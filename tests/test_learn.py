"""Tests for the online learning loop (repro.learn)."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.learned import DecisionTree
from repro.errors import ModelError
from repro.fleet.balancer import merge_stats
from repro.learn import (
    LearnConfig,
    ModelRegistry,
    ShadowEvaluator,
    TraceLog,
    Trainer,
    canonical_record,
    fit_from_records,
    is_holdout,
    model_token,
    train_once,
)
from repro.learn.smoke import CANONICAL_SWEEP_SHA
from repro.resilience.guard import BreakerConfig, CircuitBreaker
from repro.serve.service import AdvisorService

from .conftest import make_random_coo


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _fit_tiny_tree(n=24, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 3))
    y = ["bcsr" if row[0] > 0 else "csr" for row in X]
    tree = DecisionTree(max_depth=3, min_samples_leaf=1)
    tree.fit(X, y)
    return tree, X


def _record(mode="baseline", kind="csr", features=(1.0, 2.0, 3.0), **extra):
    rec = {
        "schema": 1,
        "mode": mode,
        "features": list(features) if features is not None else None,
        "chosen": {"kind": kind, "block": None, "impl": "scalar"},
    }
    rec.update(extra)
    return rec


# ------------------------- tree serialization -------------------------- #
class TestTreePayload:
    def test_round_trip_predicts_identically(self):
        tree, X = _fit_tiny_tree()
        clone = DecisionTree.from_payload(tree.to_payload())
        for row in X:
            assert clone.predict(row) == tree.predict(row)

    def test_round_trip_payload_is_stable(self):
        tree, _ = _fit_tiny_tree()
        payload = tree.to_payload()
        clone = DecisionTree.from_payload(payload)
        assert clone.to_payload() == payload

    def test_unfitted_tree_refuses_to_serialize(self):
        with pytest.raises(ModelError):
            DecisionTree().to_payload()

    def test_model_token_is_content_addressed(self):
        tree, _ = _fit_tiny_tree()
        payload = tree.to_payload()
        assert model_token(payload) == model_token(json.loads(json.dumps(payload)))
        other, _ = _fit_tiny_tree(seed=4)
        assert model_token(other.to_payload()) != model_token(payload)


# ------------------------------ trace log ------------------------------ #
class TestTraceLog:
    def test_append_and_read_round_trip(self, tmp_path):
        log = TraceLog(tmp_path)
        log.append(_record(kind="bcsr"))
        log.append(_record(kind="csr"))
        records = list(log.records())
        assert [r["chosen"]["kind"] for r in records] == ["bcsr", "csr"]
        assert all("ts" in r and r["schema"] == 1 for r in records)
        assert log.records_logged == 2
        assert log.record_count() == 2

    def test_canonical_record_strips_timing_only(self):
        rec = _record(ts=123.4, elapsed_s=0.5)
        canon = canonical_record(rec)
        assert "ts" not in canon and "elapsed_s" not in canon
        assert canon["chosen"] == rec["chosen"]

    def test_appends_are_buffered_until_flush(self, tmp_path):
        log = TraceLog(tmp_path, flush_records=4)
        for _ in range(3):
            log.append(_record())
        assert log.records_logged == 3
        assert log.segments() == []  # nothing on disk yet
        log.append(_record())  # 4th append triggers the batch flush
        assert len(log.segments()) == 1
        assert sum(1 for _ in log.records()) == 4

    def test_rotation_rolls_segments(self, tmp_path):
        log = TraceLog(tmp_path, max_segment_bytes=64, max_segments=10)
        for _ in range(6):
            log.append(_record())
        log.flush()
        assert len(log.segments()) > 1
        # Every record survives across the roll.
        assert log.record_count() == 6

    def test_bounding_prunes_oldest_segments(self, tmp_path):
        log = TraceLog(
            tmp_path, max_segment_bytes=1, max_segments=2, flush_records=1
        )
        # 1-byte segments: every record rolls to a fresh segment.
        for i in range(5):
            log.append(_record(seq=i))
        segments = log.segments()
        assert len(segments) <= 2
        kept = [r["seq"] for r in log.records()]
        assert kept == sorted(kept)
        assert kept[-1] == 4  # newest records survive, oldest were pruned

    def test_corrupt_and_foreign_lines_are_skipped(self, tmp_path):
        log = TraceLog(tmp_path)
        path = log.append(_record(kind="bcsr"))
        log.flush()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{torn json\n")
            fh.write(json.dumps({"schema": 99, "mode": "baseline"}) + "\n")
        log.append(_record(kind="csr"))
        kinds = [r["chosen"]["kind"] for r in log.records()]
        assert kinds == ["bcsr", "csr"]

    def test_stale_tmp_swept_on_open(self, tmp_path):
        learn_dir = tmp_path / "learn"
        learn_dir.mkdir()
        stale = learn_dir / "x.json.999999999-0.tmp"
        stale.write_text("partial")
        TraceLog(tmp_path)
        assert not stale.exists()

    def test_clear(self, tmp_path):
        log = TraceLog(tmp_path)
        log.append(_record())
        log.clear()
        assert log.segments() == []
        assert log.record_count() == 0


# ---------------------------- model registry --------------------------- #
class TestModelRegistry:
    def test_publish_reload_current(self, tmp_path):
        tree, X = _fit_tiny_tree()
        registry = ModelRegistry(tmp_path)
        version = registry.publish(tree.to_payload())
        assert registry.artifact_path(version).exists()
        assert registry.pointer_path().exists()
        assert registry.current() == (None, None)  # not loaded yet
        assert registry.reload() == (None, version)
        loaded, live = registry.current()
        assert live == version
        assert loaded.predict(X[0]) == tree.predict(X[0])
        assert registry.reload() is None  # unchanged pointer: no-op

    def test_publish_is_idempotent(self, tmp_path):
        tree, _ = _fit_tiny_tree()
        registry = ModelRegistry(tmp_path)
        v1 = registry.publish(tree.to_payload())
        v2 = registry.publish(tree.to_payload())
        assert v1 == v2
        assert registry.versions() == [v1]

    def test_hot_swap_reports_old_and_new(self, tmp_path):
        t1, _ = _fit_tiny_tree(seed=3)
        t2, _ = _fit_tiny_tree(seed=4)
        registry = ModelRegistry(tmp_path)
        v1 = registry.publish(t1.to_payload())
        registry.reload()
        v2 = registry.publish(t2.to_payload())
        assert registry.reload() == (v1, v2)
        assert registry.current()[1] == v2
        assert sorted(registry.versions()) == sorted([v1, v2])

    def test_corrupt_pointer_keeps_old_model(self, tmp_path):
        tree, _ = _fit_tiny_tree()
        registry = ModelRegistry(tmp_path)
        version = registry.publish(tree.to_payload())
        registry.reload()
        registry.pointer_path().write_text("{not json")
        assert registry.reload() is None
        assert registry.current()[1] == version

    def test_in_flight_snapshot_survives_swap(self, tmp_path):
        t1, X = _fit_tiny_tree(seed=3)
        t2, _ = _fit_tiny_tree(seed=4)
        registry = ModelRegistry(tmp_path)
        registry.publish(t1.to_payload())
        registry.reload()
        snapshot_tree, snapshot_version = registry.current()
        registry.publish(t2.to_payload())
        registry.reload()
        # The pre-swap snapshot keeps answering with the old tree.
        assert snapshot_tree.predict(X[0]) == t1.predict(X[0])
        assert registry.current()[1] != snapshot_version


# ------------------------------ training ------------------------------- #
class TestTraining:
    def test_guided_records_are_excluded(self):
        records = [_record(mode="guided", kind="bcsr")] * 50
        assert fit_from_records(records, min_samples=1) is None

    def test_fit_needs_min_samples(self):
        records = [_record(features=(float(i), 0.0, 0.0), kind="csr")
                   for i in range(4)]
        assert fit_from_records(records, min_samples=5) is None
        fitted = fit_from_records(records, min_samples=4)
        assert fitted is not None and fitted[1] == 4

    def test_records_without_features_are_skipped(self):
        records = [_record(features=None)] * 20
        assert fit_from_records(records, min_samples=1) is None

    def test_train_once_publishes_and_emits(self, tmp_path):
        from repro.engine.events import EventBus

        class Sink:
            def __init__(self):
                self.events = []

            def handle(self, event):
                self.events.append(event)

        sink = Sink()
        bus = EventBus()
        bus.subscribe(sink)
        events = sink.events
        log = TraceLog(tmp_path)
        for i in range(10):
            log.append(_record(
                features=(float(i % 3), float(i), 0.0),
                kind="bcsr" if i % 3 == 0 else "csr",
            ))
        registry = ModelRegistry(tmp_path)
        summary = train_once(log, registry, bus=bus, min_samples=8)
        assert summary["published"] is True
        assert summary["samples"] == 10
        assert registry.reload() == (None, summary["version"])
        kinds = [e["event"] for e in events]
        assert kinds == ["train_begin", "train_end"]
        assert events[1]["published"] is True

    def test_train_once_same_trace_same_version(self, tmp_path):
        log = TraceLog(tmp_path)
        for i in range(12):
            log.append(_record(features=(float(i), 0.0, 0.0), kind="csr"))
        v1 = train_once(log, ModelRegistry(tmp_path / "a"))["version"]
        v2 = train_once(log, ModelRegistry(tmp_path / "b"))["version"]
        assert v1 == v2

    def test_trainer_refits_only_on_growth(self, tmp_path):
        log = TraceLog(tmp_path)
        registry = ModelRegistry(tmp_path)
        published = []
        trainer = Trainer(
            log, registry, interval_s=999.0, min_samples=4,
            on_publish=lambda: published.append(True),
        )
        assert trainer.train_if_grown() is not None  # first pass (no-op fit)
        assert trainer.train_if_grown() is None  # trace did not grow
        for i in range(6):
            log.append(_record(features=(float(i), 0.0, 0.0), kind="csr"))
        summary = trainer.train_if_grown()
        assert summary is not None and summary["published"]
        assert published == [True]
        snap = trainer.snapshot()
        assert snap["cycles"] == 2 and snap["publishes"] == 1


# ------------------------------- shadow -------------------------------- #
class TestShadow:
    def test_is_holdout_deterministic(self):
        assert is_holdout("anything", 1)
        assert is_holdout("10", 8)  # 0x10 % 8 == 0
        assert not is_holdout("11", 8)
        for fp in ("deadbeef", "0abc123", "ffffffff"):
            assert is_holdout(fp, 4) == is_holdout(fp, 4)

    def test_non_holdout_never_drives_breaker(self):
        shadow = ShadowEvaluator(threshold=0.5, window=4, min_window=2)
        for _ in range(50):
            transition, gap = shadow.observe(False, holdout=False)
            assert transition is None and gap is None
        assert shadow.active
        assert shadow.gap() is None

    def test_drift_trip_and_recovery_on_fake_clock(self):
        clock = FakeClock()
        shadow = ShadowEvaluator(
            threshold=0.5, window=4, min_window=2,
            breaker_config=BreakerConfig(
                failure_threshold=2, reset_timeout_s=60.0, clock=clock
            ),
        )
        transitions = []
        for _ in range(4):
            transition, _gap = shadow.observe(False, holdout=True)
            transitions.append(transition)
        assert "open" in transitions
        assert not shadow.active
        assert shadow.gap() == 1.0
        # Still open before the reset timeout; half-open probes after it.
        clock.advance(61.0)
        assert shadow.breaker.state == CircuitBreaker.HALF_OPEN
        assert shadow.active  # half-open probes may serve guided
        # A still-bad window re-opens (the probe is claimed, not leaked).
        transition, _ = shadow.observe(False, holdout=True)
        assert transition == "open"
        assert not shadow.active
        # Recovery: agreement floods the window, gap drops, breaker closes.
        clock.advance(61.0)
        closed = []
        for _ in range(4):
            transition, gap = shadow.observe(True, holdout=True)
            closed.append(transition)
        assert "close" in closed
        assert shadow.active
        assert shadow.gap() == 0.0

    def test_snapshot_counters(self):
        shadow = ShadowEvaluator(threshold=0.5, window=8, min_window=8)
        shadow.observe(True, holdout=True)
        shadow.observe(False, holdout=False)
        snap = shadow.snapshot()
        assert snap["observed"] == 2 and snap["agreed"] == 1
        assert snap["holdout_observed"] == 1 and snap["holdout_agreed"] == 1
        assert snap["gap"] is None  # below min_window
        assert snap["threshold"] == 0.5


# --------------------------- service closed loop ------------------------ #
def _learn_service(machine, shared_profile_cache, tmp_path, **cfg):
    # reload_poll_every=1 restores always-poll so closed-loop tests see a
    # publish on the very next request; the throttle itself is covered by
    # TestServiceClosedLoop.test_reload_poll_is_throttled_but_bounded.
    config = LearnConfig(**{
        "holdout_mod": 2, "min_train_samples": 4, "reload_poll_every": 1,
        **cfg,
    })
    return AdvisorService(
        machine,
        cache_dir=tmp_path,
        profile_cache=shared_profile_cache,
        learn_config=config,
    )


def _drive(service, seeds, nrows=300, nnz=2400):
    recs = []
    for seed in seeds:
        coo = make_random_coo(nrows, nrows, nnz, seed=seed, with_values=False)
        recs.append(service.advise(coo, precision="dp"))
    return recs


class TestServiceClosedLoop:
    def test_learn_requires_cache_dir(self, machine):
        with pytest.raises(ValueError):
            AdvisorService(machine, cache_dir=None, learn_config=LearnConfig())

    def test_trace_then_train_then_hot_swap(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = _learn_service(machine, shared_profile_cache, tmp_path)
        recs = _drive(service, range(8))
        assert all(r.learned["mode"] in ("baseline", "holdout") for r in recs)
        stats = service.stats()["learn"]
        assert stats["enabled"] and stats["trace_records"] == 8
        assert stats["model_version"] is None

        summary = train_once(
            service.learn.tracelog, service.learn.registry, min_samples=4
        )
        assert summary["published"]
        # The very next request polls the registry and hot-swaps.
        rec = _drive(service, [99])[0]
        assert rec.learned["model_version"] == summary["version"]
        stats = service.stats()
        assert stats["learn"]["model_version"] == summary["version"]
        assert stats["learn"]["model_swaps"] == 1
        assert stats["resilience"]["events"]["model_swap"] == 1
        assert stats["resilience"]["events"]["trace_logged"] == 9

    def test_reload_poll_is_throttled_but_bounded(
        self, machine, shared_profile_cache, tmp_path
    ):
        # Default config: the pointer is polled on request 1, 17, 33, ...
        # A cross-process publish is therefore adopted within
        # reload_poll_every requests, never later.
        service = _learn_service(
            machine, shared_profile_cache, tmp_path, reload_poll_every=4
        )
        _drive(service, range(3))
        summary = train_once(
            service.learn.tracelog, service.learn.registry, min_samples=1
        )
        assert summary["published"]
        # Request 4 rides the throttled window; request 5 (the 4th poll
        # slot after requests 1..4) polls and swaps.
        versions = [
            r.learned["model_version"] for r in _drive(service, range(50, 53))
        ]
        assert versions[0] is None
        assert versions[1] == summary["version"]
        assert versions[2] == summary["version"]
        assert service.stats()["learn"]["model_swaps"] == 1

    def test_guided_serving_uses_versioned_cache_key(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = _learn_service(machine, shared_profile_cache, tmp_path)
        # Find a non-holdout matrix and cache its baseline answer.
        target = None
        for seed in range(40):
            rec = _drive(service, [seed])[0]
            if not rec.learned["holdout"]:
                target = seed
                break
        assert target is not None
        train_once(
            service.learn.tracelog, service.learn.registry, min_samples=1
        )
        before = service.stats()["cache_misses"]
        rec = _drive(service, [target])[0]
        assert rec.learned["mode"] == "guided"
        assert "predicted_kind" in rec.learned
        assert rec.best.kind == rec.learned["predicted_kind"]
        # The baseline cache entry must not satisfy a guided request: the
        # guided answer lives under a model-version-suffixed key.
        assert not rec.cache_hit
        assert service.stats()["cache_misses"] == before + 1
        again = _drive(service, [target])[0]
        assert again.cache_hit and again.learned["mode"] == "guided"

    def test_holdout_stays_analytic_and_shadowed(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = _learn_service(machine, shared_profile_cache, tmp_path)
        _drive(service, range(6))
        train_once(
            service.learn.tracelog, service.learn.registry, min_samples=1
        )
        holdout_seed = None
        for seed in range(40, 80):
            rec = _drive(service, [seed])[0]
            if rec.learned["holdout"]:
                holdout_seed = seed
                break
        assert holdout_seed is not None
        assert rec.learned["mode"] == "holdout"
        assert "predicted_kind" not in rec.learned  # model never steered it
        assert rec.learned["shadow"]["chosen_kind"] == rec.best.kind
        snap = service.stats()["learn"]["shadow"]
        assert snap["holdout_observed"] >= 1

    def test_drift_trips_fallback_mode(
        self, machine, shared_profile_cache, tmp_path
    ):
        clock = FakeClock()
        config = LearnConfig(
            holdout_mod=2, drift_threshold=0.5,
            drift_window=2, drift_min_window=2,
        )
        service = AdvisorService(
            machine,
            cache_dir=tmp_path,
            profile_cache=shared_profile_cache,
            learn_config=config,
            drift_breaker_config=BreakerConfig(
                failure_threshold=1, reset_timeout_s=1e9, clock=clock
            ),
        )
        # Publish a deliberately wrong model: a single leaf predicting a
        # kind the analytic path never chooses for these matrices.
        bogus = {
            "max_depth": 1,
            "min_samples_leaf": 1,
            "classes": ["bcsd"],
            "root": {"label": "bcsd"},
        }
        service.learn.registry.publish(bogus)
        seeds = iter(range(500))
        holdout_seen = guided = fallback = None
        while service.learn.shadow.active:
            rec = _drive(service, [next(seeds)])[0]
            if rec.learned["holdout"]:
                holdout_seen = rec
                assert rec.learned["shadow"]["agree"] is False
            elif rec.learned["mode"] == "guided":
                guided = rec
        assert holdout_seen is not None
        # Breaker open: non-holdout requests fall back to pure analytic.
        while fallback is None:
            rec = _drive(service, [next(seeds)])[0]
            if not rec.learned["holdout"]:
                fallback = rec
        assert fallback.learned["mode"] == "fallback"
        assert "predicted_kind" not in fallback.learned
        stats = service.stats()
        assert stats["learn"]["drift_breaker"]["state"] == "open"
        assert stats["resilience"]["events"]["drift_alarm"] >= 1
        assert stats["learn"]["modes"]["fallback"] >= 1
        # Fallback answers stay trainable (they are analytic choices).
        if guided is not None:
            assert guided.learned["mode"] == "guided"

    def test_same_seed_traffic_same_canonical_trace(
        self, machine, shared_profile_cache, tmp_path
    ):
        def run(subdir):
            service = _learn_service(
                machine, shared_profile_cache, tmp_path / subdir
            )
            _drive(service, range(5))
            return [
                json.dumps(canonical_record(r), sort_keys=True)
                for r in service.learn.tracelog.records()
            ]

        assert run("a") == run("b")


# ----------------------------- fleet fan-in ----------------------------- #
def _learn_block(**over):
    block = {
        "enabled": True,
        "model_version": "v1",
        "holdout_mod": 8,
        "trace_records": 10,
        "trace_segments": 1,
        "model_swaps": 1,
        "modes": {"baseline": 5, "holdout": 3, "guided": 2, "fallback": 0},
        "shadow": {
            "observed": 8, "agreed": 6,
            "holdout_observed": 4, "holdout_agreed": 3,
            "window": 4, "gap": 0.25, "threshold": 0.5,
        },
        "drift_breaker": {"state": "closed", "consecutive_failures": 0},
    }
    block.update(over)
    return block


def _worker_stats(learn):
    return {
        "requests": 1, "cache_hits": 0, "cache_misses": 1, "errors": 0,
        "timeouts": 0, "batches": 0, "degraded": 0, "mean_latency_s": 0.1,
        "machine": "m", "worker_id": 0, "cache_entries": 1,
        "persistent_cache": True,
        "resilience": {"events": {}, "breakers": {}},
        "learn": learn,
    }


class TestFleetLearnMerge:
    def test_counters_sum_and_breaker_worst_of(self):
        a = _worker_stats(_learn_block())
        b = _worker_stats(_learn_block(
            model_version="v2",
            trace_records=6,
            model_swaps=2,
            modes={"baseline": 1, "holdout": 1, "guided": 0, "fallback": 2},
            shadow={
                "observed": 4, "agreed": 1,
                "holdout_observed": 2, "holdout_agreed": 0,
                "window": 2, "gap": 1.0, "threshold": 0.5,
            },
            drift_breaker={"state": "open", "consecutive_failures": 3},
        ))
        merged = merge_stats([a, b])["learn"]
        assert merged["enabled"] is True
        assert merged["trace_records"] == 16
        assert merged["model_swaps"] == 3
        assert merged["model_versions"] == ["v1", "v2"]
        assert merged["modes"]["fallback"] == 2
        assert merged["modes"]["baseline"] == 6
        shadow = merged["shadow"]
        assert shadow["holdout_observed"] == 6
        assert shadow["holdout_agreed"] == 3
        assert shadow["gap"] == 0.5  # recomputed from the merged counts
        assert merged["drift_breaker"]["state"] == "open"
        assert merged["drift_breaker"]["consecutive_failures"] == 3

    def test_disabled_everywhere_stays_disabled(self):
        stats = [_worker_stats({"enabled": False})] * 2
        assert merge_stats(stats)["learn"] == {"enabled": False}


# ------------------------------ HTTP layer ------------------------------ #
@pytest.fixture()
def learn_server(machine, shared_profile_cache, tmp_path):
    from repro.serve.server import create_server

    service = _learn_service(machine, shared_profile_cache, tmp_path)
    srv = create_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _mtx_text(seed):
    coo = make_random_coo(120, 120, 900, seed=seed, with_values=False)
    pairs = sorted(zip(coo.rows.tolist(), coo.cols.tolist()))
    lines = ["%%MatrixMarket matrix coordinate pattern general",
             f"{coo.nrows} {coo.ncols} {len(pairs)}"]
    lines += [f"{r + 1} {c + 1}" for r, c in pairs]
    return "\n".join(lines) + "\n"


class TestLearnHTTP:
    def _post(self, server, body):
        port = server.server_address[1]
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/advise",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            return json.loads(resp.read())

    def _get_stats(self, server):
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/stats", timeout=30
        ) as resp:
            return json.loads(resp.read())

    def test_advise_payload_carries_learned_block(self, learn_server):
        payload = self._post(
            learn_server, {"matrix_market": _mtx_text(5)}
        )
        assert payload["learned"]["mode"] in ("baseline", "holdout")
        assert payload["learned"]["model_version"] is None

    def test_stats_exposes_learn_block(self, learn_server):
        self._post(learn_server, {"matrix_market": _mtx_text(6)})
        stats = self._get_stats(learn_server)
        assert stats["learn"]["enabled"] is True
        assert stats["learn"]["trace_records"] >= 1
        assert stats["resilience"]["events"]["trace_logged"] >= 1


# ------------------------------- CLI ----------------------------------- #
class TestTrainCLI:
    def test_train_publishes_from_trace(
        self, machine, shared_profile_cache, tmp_path, capsys
    ):
        from repro.cli import main

        service = _learn_service(machine, shared_profile_cache, tmp_path)
        _drive(service, range(6))
        # A separate process only sees flushed segments; drain the buffer
        # like a serving process's periodic flush (or shutdown) would.
        service.learn.tracelog.flush()
        rc = main(["train", "--cache-dir", str(tmp_path), "--min-samples", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "published model" in out
        registry = ModelRegistry(tmp_path)
        assert registry.reload() is not None

    def test_train_empty_trace_fails_politely(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["train", "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "not published" in capsys.readouterr().out

    def test_serve_train_interval_requires_learn(self, capsys):
        from repro.cli import main

        rc = main(["serve", "--train-interval", "5"])
        assert rc == 2
        assert "--learn" in capsys.readouterr().err


# --------------------------- model-path safety -------------------------- #
@pytest.mark.slow
class TestAnalyticPathUntouched:
    def test_canonical_sweep_sha_is_unchanged(self, tmp_path):
        """The learning subsystem must not perturb the analytic sweep."""
        import hashlib

        from repro.bench.harness import SweepConfig, run_sweep
        from repro.core.profiling import ProfileStore

        config = SweepConfig(
            precisions=("dp",),
            thread_counts=(1,),
            max_block_elems=4,
            suite_indices=(1, 27, 30),
        )
        result = run_sweep(
            config=config, profile_cache=ProfileStore(tmp_path)
        )
        sha = hashlib.sha256(
            result.canonical_json().encode()
        ).hexdigest()[:16]
        assert sha == CANONICAL_SWEEP_SHA
