"""Tests for SciPy interop and the to_coo extraction API."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ConversionError
from repro.formats import COOMatrix, build_format
from repro.formats.interop import from_scipy, to_scipy_coo, to_scipy_csr


def make_coo(seed=41, n=50, m=44, nnz=400):
    rng = np.random.default_rng(seed)
    vals = rng.uniform(0.5, 2.0, nnz) * rng.choice([-1.0, 1.0], nnz)
    return COOMatrix(
        n, m, rng.integers(0, n, nnz), rng.integers(0, m, nnz), vals
    )


class TestFromScipy:
    @pytest.mark.parametrize("builder", [
        sparse.coo_matrix, sparse.csr_matrix, sparse.csc_matrix,
    ])
    def test_all_scipy_layouts(self, builder):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((20, 30)) * (rng.random((20, 30)) < 0.3)
        coo = from_scipy(builder(dense))
        np.testing.assert_allclose(coo.to_dense(), dense)

    def test_rejects_non_scipy(self):
        with pytest.raises(ConversionError):
            from_scipy(np.zeros((3, 3)))

    def test_merges_scipy_duplicates(self):
        sp = sparse.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([1, 1]))),
            shape=(2, 2),
        )
        coo = from_scipy(sp)
        assert coo.nnz == 1
        assert coo.to_dense()[0, 1] == 3.0


class TestToScipy:
    @pytest.mark.parametrize("kind,block", [
        ("csr", None), ("bcsr", (2, 3)), ("bcsr_dec", (2, 2)),
        ("bcsd", 4), ("bcsd_dec", 3), ("vbl", None), ("ubcsr", (3, 2)),
        ("vbr", None),
    ])
    def test_round_trip_every_format(self, kind, block):
        coo = make_coo()
        fmt = build_format(coo, kind, block)
        sp = to_scipy_coo(fmt)
        np.testing.assert_allclose(sp.toarray(), coo.to_dense())
        # Padding was dropped: SciPy holds exactly the true nonzeros.
        assert sp.nnz == coo.nnz

    def test_to_scipy_csr(self):
        coo = make_coo(seed=42)
        sp = to_scipy_csr(coo)
        assert sparse.issparse(sp) and sp.format == "csr"
        np.testing.assert_allclose(sp.toarray(), coo.to_dense())

    def test_structure_only_rejected(self):
        coo = make_coo().pattern_only()
        with pytest.raises(ConversionError):
            to_scipy_csr(coo)
        fmt = build_format(coo, "bcsr", (2, 2), with_values=False)
        with pytest.raises(ConversionError):
            to_scipy_coo(fmt)

    def test_spmv_agrees_with_scipy(self):
        """Cross-validation: our kernels vs SciPy's on the same matrix."""
        coo = make_coo(seed=43)
        x = np.random.default_rng(2).standard_normal(coo.ncols)
        expected = to_scipy_csr(coo) @ x
        for kind, block in [("csr", None), ("bcsr", (2, 2)), ("vbl", None)]:
            fmt = build_format(coo, kind, block)
            np.testing.assert_allclose(fmt.spmv(x), expected, rtol=1e-10)


class TestToCoo:
    @pytest.mark.parametrize("kind,block", [
        ("csr", None), ("bcsr", (2, 3)), ("bcsr_dec", (2, 2)),
        ("bcsd", 4), ("bcsd_dec", 3), ("vbl", None), ("ubcsr", (3, 2)),
        ("vbr", None),
    ])
    def test_exact_round_trip(self, kind, block):
        coo = make_coo(seed=44)
        fmt = build_format(coo, kind, block)
        assert fmt.to_coo() == coo

    def test_identity_on_coo(self):
        coo = make_coo(seed=45)
        assert coo.to_coo() is coo
