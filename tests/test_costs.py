"""Tests for the kernel cost tables."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.formats import CSRMatrix, VBLMatrix, build_format
from repro.machine.costs import KernelCostModel
from repro.types import Impl

from .conftest import make_random_coo

COSTS = KernelCostModel()


class TestBlockCycles:
    def test_scalar_grows_with_elements(self):
        costs = [
            COSTS.rect_block_cycles(r, c, "scalar", "dp")
            for r, c in [(1, 2), (2, 2), (2, 4)]
        ]
        assert costs == sorted(costs)

    def test_simd_lanes(self):
        assert COSTS.lanes("dp") == 2
        assert COSTS.lanes("sp") == 4

    def test_simd_helps_wide_blocks_more_in_sp(self):
        """The sp SIMD advantage on a 2x4 block must exceed the dp one —
        the mechanism behind Table II's sp-simd shift toward BCSR."""
        gain = {}
        for prec in ("sp", "dp"):
            scalar = COSTS.rect_block_cycles(2, 4, "scalar", prec)
            simd = COSTS.rect_block_cycles(2, 4, "simd", prec)
            gain[prec] = scalar / simd
        assert gain["sp"] > gain["dp"]

    def test_simd_not_worth_it_for_tiny_blocks(self):
        scalar = COSTS.rect_block_cycles(1, 2, "scalar", "dp")
        simd = COSTS.rect_block_cycles(1, 2, "simd", "dp")
        assert simd >= scalar

    def test_alignment_penalty(self):
        aligned = COSTS.rect_block_cycles(1, 4, "simd", "sp")
        unaligned = COSTS.rect_block_cycles(1, 5, "simd", "sp")
        # 1x5 needs two vector ops AND the penalty.
        assert unaligned > aligned + COSTS.align_penalty_cycles - 1e-9

    def test_diag_simd_avoids_horizontal_add(self):
        rect = COSTS.rect_block_cycles(1, 4, "simd", "dp")
        diag = COSTS.diag_block_cycles(4, "simd", "dp")
        assert diag < rect + COSTS.hadd_cycles


class TestBlockRowCycles:
    def test_csr_per_row(self):
        coo = make_random_coo(20, 20, 80, seed=51, with_values=False)
        csr = CSRMatrix.from_coo(coo, with_values=False)
        cycles = COSTS.block_row_cycles(csr, Impl.SCALAR, "dp")
        assert cycles.shape == (20,)
        expected = (
            COSTS.row_overhead_cycles
            + np.diff(csr.row_ptr) * COSTS.csr_elem_cycles["dp"]
        )
        np.testing.assert_allclose(cycles, expected)

    def test_csr_rejects_simd(self):
        coo = make_random_coo(10, 10, 30, seed=52, with_values=False)
        csr = CSRMatrix.from_coo(coo, with_values=False)
        with pytest.raises(ModelError):
            COSTS.block_row_cycles(csr, Impl.SIMD, "dp")

    def test_vbl_rejects_simd(self):
        coo = make_random_coo(10, 10, 30, seed=53, with_values=False)
        vbl = VBLMatrix.from_coo(coo, with_values=False)
        with pytest.raises(ModelError):
            COSTS.block_row_cycles(vbl, Impl.SIMD, "dp")

    @pytest.mark.parametrize("kind,block", [
        ("bcsr", (2, 2)), ("bcsd", 4), ("vbl", None), ("ubcsr", (2, 2)),
        ("vbr", None),
    ])
    def test_rows_sum_positive(self, kind, block):
        coo = make_random_coo(24, 24, 100, seed=54, with_values=False)
        fmt = build_format(coo, kind, block, with_values=False)
        impl = Impl.SCALAR
        cycles = COSTS.block_row_cycles(fmt, impl, "dp")
        assert cycles.shape[0] == fmt.n_block_rows
        assert (cycles > 0).all()


class TestComputeCycles:
    def test_padding_costs_compute(self):
        """BCSR on a scattered pattern computes on its padding zeros."""
        coo = make_random_coo(40, 40, 100, seed=55, with_values=False)
        csr = build_format(coo, "csr", with_values=False)
        bcsr = build_format(coo, "bcsr", (2, 4), with_values=False)
        t_csr = COSTS.compute_cycles(csr, Impl.SCALAR, "dp")
        t_bcsr = COSTS.compute_cycles(bcsr, Impl.SCALAR, "dp")
        assert bcsr.padding_ratio > 2.0
        assert t_bcsr > t_csr

    def test_decomposed_pays_pass_startup(self):
        from tests.test_decomposed import make_blocky_coo

        coo = make_blocky_coo()
        dec = build_format(coo, "bcsr_dec", (2, 2), with_values=False)
        assert len(dec.submatrices()) == 2
        total = COSTS.compute_cycles(dec, Impl.SCALAR, "dp")
        parts = sum(
            COSTS.block_row_cycles(p, Impl.SCALAR, "dp").sum()
            for p in dec.submatrices()
        )
        assert total == pytest.approx(parts + COSTS.pass_startup_cycles)

    def test_effective_impl_keeps_csr_scalar(self):
        coo = make_random_coo(10, 10, 30, seed=56, with_values=False)
        csr = build_format(coo, "csr", with_values=False)
        assert KernelCostModel.effective_impl(csr, Impl.SIMD) is Impl.SCALAR
        bcsr = build_format(coo, "bcsr", (2, 2), with_values=False)
        assert KernelCostModel.effective_impl(bcsr, Impl.SIMD) is Impl.SIMD

    def test_simd_config_on_decomposed_mixes_impls(self):
        """In a SIMD run the DEC blocked part vectorizes, the CSR part not —
        total must sit strictly between all-scalar and a hypothetical
        all-simd lower bound for a blocked-dominated matrix."""
        from tests.test_decomposed import make_blocky_coo

        dec = build_format(
            make_blocky_coo(), "bcsr_dec", (2, 2), with_values=False
        )
        t_scalar = COSTS.compute_cycles(dec, Impl.SCALAR, "sp")
        t_simd = COSTS.compute_cycles(dec, Impl.SIMD, "sp")
        assert t_simd != t_scalar
