"""Tests for feature-driven candidate pruning.

The slow tests here assert the advisor's headline guarantees on the
30-matrix suite: pruned selection agrees with the exhaustive tuning loop on
all but at most one matrix, while evaluating at most a third of the
candidate space — and the pruned advise path is measurably >= 3x faster.
"""

import time

import numpy as np
import pytest

from repro.core.candidates import candidate_space
from repro.core.selection import evaluate_candidates, select_with_model
from repro.formats import COOMatrix
from repro.serve.features import extract_features
from repro.serve.pruning import PruneConfig, prune_candidates

from .conftest import make_random_coo

# The exhaustive OVERLAP selection for every suite entry, as
# "kind|block|impl".  Deterministic: predictions are a pure function of the
# pattern and the analytically-calibrated machine profile.  Regenerate with:
#   evaluate_candidates(entry.build(), CORE2_XEON, "dp",
#                       candidates=candidate_space(include_vbl=False),
#                       models=("overlap",), run_simulation=False)
#   then select_with_model(results, "overlap").
EXHAUSTIVE_SELECTION = {
    1: ("dense", "bcsr|(8, 1)|simd"),
    2: ("random", "csr|None|scalar"),
    3: ("cfd2", "csr|None|scalar"),
    4: ("parabolic_fem", "bcsd|8|simd"),
    5: ("Ga41As41H72", "bcsr_dec|(2, 2)|simd"),
    6: ("ASIC_680k", "csr|None|scalar"),
    7: ("G3_circuit", "csr|None|scalar"),
    8: ("Hamrle3", "csr|None|scalar"),
    9: ("rajat31", "csr|None|scalar"),
    10: ("cage15", "csr|None|scalar"),
    11: ("wb-edu", "csr|None|scalar"),
    12: ("wikipedia", "csr|None|scalar"),
    13: ("degme", "csr|None|scalar"),
    14: ("rail4284", "csr|None|scalar"),
    15: ("spal_004", "bcsr|(1, 4)|simd"),
    16: ("bone010", "bcsr_dec|(3, 2)|simd"),
    17: ("kkt_power", "csr|None|scalar"),
    18: ("largebasis", "bcsr|(2, 2)|simd"),
    19: ("TSOPF_RS", "bcsr_dec|(1, 8)|simd"),
    20: ("af_shell10", "bcsr|(2, 2)|simd"),
    21: ("audikw_1", "bcsr_dec|(3, 2)|simd"),
    22: ("F1", "bcsr_dec|(3, 2)|simd"),
    23: ("fdiff", "bcsd|8|simd"),
    24: ("gearbox", "bcsr_dec|(3, 2)|simd"),
    25: ("inline_1", "bcsr_dec|(3, 2)|simd"),
    26: ("ldoor", "bcsr_dec|(3, 2)|simd"),
    27: ("pwtk", "bcsr|(6, 1)|simd"),
    28: ("thermal2", "csr|None|scalar"),
    29: ("nd24k", "bcsr_dec|(2, 2)|simd"),
    30: ("stomach", "bcsd|8|simd"),
}


def _key(candidate) -> str:
    return f"{candidate.kind}|{candidate.block}|{candidate.impl.value}"


@pytest.fixture(scope="module")
def candidates():
    return candidate_space(include_vbl=False)


class TestRules:
    def test_csr_always_kept(self, candidates):
        for seed in (1, 2, 3):
            coo = make_random_coo(400, 400, 1200, seed=seed, with_values=False)
            decision = prune_candidates(extract_features(coo), candidates)
            assert any(c.kind == "csr" for c in decision.kept)

    def test_fraction_never_exceeds_one_third(self, candidates):
        patterns = [
            COOMatrix.from_dense(np.ones((48, 48))),  # everything survives
            make_random_coo(500, 500, 1500, seed=4, with_values=False),
            COOMatrix.eye(300),
        ]
        for coo in patterns:
            decision = prune_candidates(extract_features(coo), candidates)
            assert decision.candidate_fraction <= 1 / 3

    def test_sparse_random_drops_padded_blockings(self, candidates):
        coo = make_random_coo(600, 600, 1800, seed=5, with_values=False)
        decision = prune_candidates(extract_features(coo), candidates)
        # ~0.5% density: every 2-D padded blocking implies > 2x padding.
        for cand in decision.kept:
            if cand.kind == "bcsr":
                r, c = cand.block
                assert r == 1 or c == 1
        # Larger diagonal sizes are hopeless too (half-empty segments at
        # size 2 already sit right at the padding limit).
        for cand in decision.kept:
            if cand.kind in ("bcsd", "bcsd_dec"):
                assert cand.block == 2

    def test_dense_keeps_every_shape_family(self, candidates):
        coo = COOMatrix.from_dense(np.ones((48, 48)))
        decision = prune_candidates(extract_features(coo), candidates)
        kinds = {c.kind for c in decision.kept}
        assert {"csr", "bcsr", "bcsr_dec", "bcsd", "bcsd_dec"} <= kinds

    def test_dropped_reasons_cover_missing_structures(self, candidates):
        coo = make_random_coo(600, 600, 1800, seed=6, with_values=False)
        decision = prune_candidates(extract_features(coo), candidates)
        kept_structures = {(c.kind, c.block) for c in decision.kept}
        n_dropped = decision.n_structures_total - len(kept_structures)
        assert len(decision.dropped) == n_dropped
        assert all(reason for reason in decision.dropped.values())

    def test_rect_shape_cap(self, candidates):
        coo = COOMatrix.from_dense(np.ones((48, 48)))
        config = PruneConfig(max_rect_shapes=3)
        decision = prune_candidates(extract_features(coo), candidates, config)
        shapes = {
            c.block for c in decision.kept if c.kind in ("bcsr", "bcsr_dec")
        }
        assert len(shapes) <= 3

    def test_decision_counts_consistent(self, candidates):
        coo = make_random_coo(300, 300, 2000, seed=7, with_values=False)
        decision = prune_candidates(extract_features(coo), candidates)
        assert decision.n_candidates_total == len(candidates)
        assert decision.n_candidates_kept == len(decision.kept)
        assert decision.n_structures_kept == len(
            {(c.kind, c.block) for c in decision.kept}
        )
        assert 0 < decision.candidate_fraction <= 1.0


@pytest.mark.slow
class TestSuiteParity:
    def test_pruned_selection_matches_exhaustive(
        self, machine, profile_dp, candidates
    ):
        """On the full 30-matrix suite: <= 1/3 of candidates evaluated,
        and the selected candidate changes on at most one matrix."""
        from repro.matrices.suite import SUITE

        changed = []
        kept_total = 0
        for entry in SUITE:
            name, expected = EXHAUSTIVE_SELECTION[entry.idx]
            assert entry.name == name
            coo = entry.build()
            decision = prune_candidates(extract_features(coo), candidates)
            assert decision.candidate_fraction <= 1 / 3, entry.name
            kept_total += decision.n_candidates_kept
            results = evaluate_candidates(
                coo,
                machine,
                "dp",
                candidates=decision.kept,
                models=("overlap",),
                profile=profile_dp,
                run_simulation=False,
            )
            selected = _key(select_with_model(results, "overlap").candidate)
            if selected != expected:
                changed.append((entry.name, expected, selected))
        assert len(changed) <= 1, changed
        assert kept_total <= len(SUITE) * len(candidates) / 3


@pytest.mark.slow
class TestSpeedup:
    def test_pruned_advise_at_least_3x_faster(self, machine, profile_dp):
        """Pruning must pay for the feature pass several times over on a
        large unstructured pattern (where conversions dominate)."""
        rng = np.random.default_rng(7)
        n, per_row = 80_000, 15
        rows = np.repeat(np.arange(n), per_row)
        cols = rng.integers(0, n, size=n * per_row)
        coo = COOMatrix(n, n, rows, cols)
        cands = candidate_space(include_vbl=False)

        t0 = time.perf_counter()
        exhaustive = evaluate_candidates(
            coo, machine, "dp", candidates=cands, models=("overlap",),
            profile=profile_dp, run_simulation=False,
        )
        t_exhaustive = time.perf_counter() - t0

        t0 = time.perf_counter()
        decision = prune_candidates(extract_features(coo), cands)
        pruned = evaluate_candidates(
            coo, machine, "dp", candidates=decision.kept,
            models=("overlap",), profile=profile_dp, run_simulation=False,
        )
        t_pruned = time.perf_counter() - t0

        sel_ex = select_with_model(exhaustive, "overlap").candidate
        sel_pr = select_with_model(pruned, "overlap").candidate
        assert sel_pr == sel_ex
        # Measured ~11x on the 1-CPU container; 3x leaves wide margin.
        assert t_exhaustive / t_pruned >= 3.0, (t_exhaustive, t_pruned)
