"""Tests for the t_b / nof profiling machinery (paper eq. 4 methodology)."""

import pytest

from repro.core.profiling import (
    BlockProfile,
    ProfileCache,
    dense_coo,
    profile_machine,
)
from repro.errors import ProfileError
from repro.formats import BCSRMatrix, CSRMatrix
from repro.types import Impl


class TestDenseCoo:
    def test_shape_and_count(self):
        coo = dense_coo(5)
        assert coo.nnz == 25
        assert coo.shape == (5, 5)

    def test_canonical_order(self):
        coo = dense_coo(4)
        assert coo.rows.tolist() == sorted(coo.rows.tolist())


class TestProfileContents:
    def test_covers_whole_fixed_size_space(self, profile_dp):
        keys = set(profile_dp.t_b)
        # CSR + 19 rectangular shapes x 2 impls + 7 diagonal sizes x 2 impls
        assert (("csr", None), Impl.SCALAR) in keys
        assert (("bcsr", (2, 2)), Impl.SCALAR) in keys
        assert (("bcsr", (2, 2)), Impl.SIMD) in keys
        assert (("bcsd", 8), Impl.SIMD) in keys
        assert len(keys) == 1 + 19 * 2 + 7 * 2

    def test_all_positive(self, profile_dp):
        assert all(v > 0 for v in profile_dp.t_b.values())
        assert all(v >= 0 for v in profile_dp.nof.values())

    def test_nof_below_one(self, profile_dp):
        """nof is the non-overlapped *fraction* of compute: on a streaming
        dense profile it cannot plausibly exceed ~1."""
        assert all(v <= 1.2 for v in profile_dp.nof.values())

    def test_bigger_blocks_cost_more(self, profile_dp):
        t = profile_dp.t_b
        assert (
            t[(("bcsr", (2, 4)), Impl.SCALAR)]
            > t[(("bcsr", (1, 2)), Impl.SCALAR)]
        )

    def test_csr_element_cheaper_than_any_block(self, profile_dp):
        t_elem = profile_dp.t_b[(("csr", None), Impl.SCALAR)]
        t_blk = profile_dp.t_b[(("bcsr", (2, 2)), Impl.SCALAR)]
        assert t_elem < t_blk  # one element vs a 4-element block

    def test_lookup_helpers(self, profile_dp, small_coo):
        csr = CSRMatrix.from_coo(small_coo, with_values=False)
        assert profile_dp.block_time(csr, Impl.SCALAR) > 0
        assert profile_dp.nof_factor(csr, Impl.SCALAR) >= 0

    def test_lookup_missing_raises(self, profile_dp, small_coo):
        bcsr = BCSRMatrix.from_coo(small_coo, (8, 8), with_values=False)
        with pytest.raises(ProfileError):
            profile_dp.block_time(bcsr, Impl.SCALAR)  # 64 elems: unprofiled

    def test_precisions_differ(self, profile_dp, profile_sp):
        key = (("bcsr", (2, 2)), Impl.SCALAR)
        assert profile_dp.t_b[key] != profile_sp.t_b[key]


class TestMethodologyGuards:
    def test_small_profile_must_fit_l1(self, machine):
        with pytest.raises(ProfileError):
            profile_machine(machine, "dp", small_n=400)

    def test_large_profile_must_exceed_l2(self, machine):
        with pytest.raises(ProfileError):
            profile_machine(machine, "dp", large_n=100)


class TestProfileCache:
    def test_caches_by_machine_and_precision(self, machine):
        cache = ProfileCache()
        a = cache.get(machine, "dp")
        b = cache.get(machine, "dp")
        c = cache.get(machine, "sp")
        assert a is b
        assert a is not c
        assert isinstance(a, BlockProfile)
