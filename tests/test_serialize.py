"""Tests for the .npz format serialization."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, build_format
from repro.formats.serialize import load_format, save_format


def make_coo(seed=51, n=48, m=40, nnz=360):
    rng = np.random.default_rng(seed)
    vals = rng.uniform(0.5, 2.0, nnz)
    return COOMatrix(
        n, m, rng.integers(0, n, nnz), rng.integers(0, m, nnz), vals
    )


ALL_KINDS = [
    ("csr", None), ("bcsr", (2, 3)), ("bcsr_dec", (2, 2)),
    ("bcsd", 4), ("bcsd_dec", 3), ("vbl", None), ("ubcsr", (3, 2)),
    ("vbr", None), ("csr_du", None),
]


class TestRoundTrip:
    @pytest.mark.parametrize("kind,block", ALL_KINDS)
    def test_values_and_behaviour_preserved(self, tmp_path, kind, block):
        coo = make_coo()
        fmt = build_format(coo, kind, block)
        path = tmp_path / "fmt.npz"
        save_format(path, fmt)
        loaded = load_format(path)
        assert type(loaded) is type(fmt)
        assert loaded.shape == fmt.shape
        assert loaded.nnz == fmt.nnz
        assert loaded.nnz_stored == fmt.nnz_stored
        x = np.random.default_rng(3).standard_normal(coo.ncols)
        np.testing.assert_allclose(loaded.spmv(x), fmt.spmv(x))

    def test_working_set_preserved(self, tmp_path):
        coo = make_coo(seed=52)
        fmt = build_format(coo, "bcsr", (2, 4))
        path = tmp_path / "fmt.npz"
        save_format(path, fmt)
        loaded = load_format(path)
        assert loaded.working_set("dp") == fmt.working_set("dp")
        assert loaded.working_set("sp") == fmt.working_set("sp")

    def test_structure_only_round_trip(self, tmp_path):
        coo = make_coo(seed=53)
        fmt = build_format(coo, "bcsr", (2, 2), with_values=False)
        path = tmp_path / "s.npz"
        save_format(path, fmt)
        loaded = load_format(path)
        assert not loaded.has_values
        assert loaded.n_blocks == fmt.n_blocks

    def test_coo_round_trip(self, tmp_path):
        coo = make_coo(seed=54)
        path = tmp_path / "coo.npz"
        save_format(path, coo)
        assert load_format(path) == coo

    def test_decomposed_parts_preserved(self, tmp_path):
        coo = make_coo(seed=55)
        dec = build_format(coo, "bcsd_dec", 3)
        path = tmp_path / "dec.npz"
        save_format(path, dec)
        loaded = load_format(path)
        assert [p.kind for p in loaded.parts] == [p.kind for p in dec.parts]
        np.testing.assert_allclose(loaded.to_dense(), dec.to_dense())


class TestErrors:
    def test_rejects_non_format_file(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, junk=np.arange(3))
        with pytest.raises(FormatError):
            load_format(path)

    def test_rejects_wrong_version(self, tmp_path):
        import json

        path = tmp_path / "v.npz"
        meta = np.frombuffer(
            json.dumps({"version": 999, "kind": "csr"}).encode(),
            dtype=np.uint8,
        )
        np.savez(path, __meta__=meta)
        with pytest.raises(FormatError):
            load_format(path)
