"""Whole-program analysis tests: graph construction, fixpoints, v2 rules.

Covers the :mod:`repro.analysis.project` call-graph edge cases (aliased
imports, ``self`` dispatch, decorated functions), fixpoint termination on
recursive call cycles, positive + negative fixtures for every v2 rule
family (numeric-safety, lock-order, stats-contract, interprocedural
lock-discipline, unused-suppression), and the three seeded-injection
tests the PR's acceptance criteria pin: an int32-narrowing edit in the
real ``machine/batch.py``, an inverted lock order mirroring
``fleet/supervisor.py``, and a renamed stats key in the real fleet
fan-in — each must produce exactly the expected finding.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import (
    FileContext,
    LintConfig,
    LockDisciplineRule,
    LockOrderRule,
    NumericSafetyRule,
    StatsContractRule,
    build_project,
    entry_locks,
    fixpoint,
    load_config,
    module_name,
    narrow_returns,
    run_lint,
    transitive_acquires,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_project(files: dict[str, str]):
    """Build a Project from ``{rel_path: source}`` without touching disk."""
    contexts = {
        rel: FileContext(Path(rel), rel, textwrap.dedent(src))
        for rel, src in files.items()
    }
    return build_project(contexts)


def repo_project(rel_paths: list[str], overrides: dict[str, str] | None = None):
    """Build a Project over real repo files, optionally patching sources."""
    overrides = overrides or {}
    contexts = {}
    for rel in rel_paths:
        src = (REPO_ROOT / rel).read_text()
        for old, new in overrides.get(rel, {}).items() if isinstance(
            overrides.get(rel), dict
        ) else []:
            src = src.replace(old, new)
        contexts[rel] = FileContext(REPO_ROOT / rel, rel, src)
    return build_project(contexts)


# --------------------------------------------------------------------------- #
# module / call graph construction
# --------------------------------------------------------------------------- #


class TestModuleGraph:
    def test_module_name_mapping(self):
        assert module_name("src/repro/machine/batch.py") == "repro.machine.batch"
        assert module_name("src/repro/learn/__init__.py") == "repro.learn"
        assert module_name("benchmarks/bench_sweep.py") == "benchmarks.bench_sweep"

    def test_bare_call_resolves_in_module(self):
        p = make_project({"src/repro/a.py": """\
            def helper():
                return 1
            def caller():
                return helper()
            """})
        assert p.callees("repro.a:caller") == ["repro.a:helper"]

    def test_aliased_module_import(self):
        p = make_project({
            "src/repro/m/util.py": "def f():\n    return 1\n",
            "src/repro/m/use.py": """\
                import repro.m.util as u
                def g():
                    return u.f()
                """,
        })
        assert p.callees("repro.m.use:g") == ["repro.m.util:f"]

    def test_aliased_from_import(self):
        p = make_project({
            "src/repro/m/util.py": "def f():\n    return 1\n",
            "src/repro/m/use.py": """\
                from repro.m.util import f as renamed
                def g():
                    return renamed()
                """,
        })
        assert p.callees("repro.m.use:g") == ["repro.m.util:f"]

    def test_relative_import(self):
        p = make_project({
            "src/repro/m/util.py": "def f():\n    return 1\n",
            "src/repro/m/use.py": """\
                from .util import f
                def g():
                    return f()
                """,
        })
        assert p.callees("repro.m.use:g") == ["repro.m.util:f"]

    def test_self_method_dispatch_and_inheritance(self):
        p = make_project({"src/repro/a.py": """\
            class Base:
                def shared(self):
                    return 1
            class Child(Base):
                def caller(self):
                    return self.shared() + self.own()
                def own(self):
                    return 2
            """})
        assert p.callees("repro.a:Child.caller") == [
            "repro.a:Base.shared", "repro.a:Child.own",
        ]

    def test_decorated_function_still_in_graph(self):
        p = make_project({"src/repro/a.py": """\
            import functools
            def deco(fn):
                return fn
            @deco
            @functools.lru_cache(maxsize=None)
            def helper():
                return 1
            def caller():
                return helper()
            """})
        assert "repro.a:helper" in p.functions
        assert p.callees("repro.a:caller") == ["repro.a:helper"]

    def test_annotated_param_receiver(self):
        p = make_project({"src/repro/a.py": """\
            class Widget:
                def ping(self):
                    return 1
            def use(w: Widget):
                return w.ping()
            """})
        assert p.callees("repro.a:use") == ["repro.a:Widget.ping"]

    def test_constructor_typed_local_receiver(self):
        p = make_project({"src/repro/a.py": """\
            class Widget:
                def ping(self):
                    return 1
            def use():
                w = Widget()
                return w.ping()
            """})
        assert p.callees("repro.a:use") == [
            "repro.a:Widget.__init__", "repro.a:Widget.ping",
        ] or p.callees("repro.a:use") == ["repro.a:Widget.ping"]

    def test_element_type_through_container_attr(self):
        # Mirrors FleetSupervisor.slots: tuple(WorkerSlot(...) for ...).
        p = make_project({"src/repro/a.py": """\
            class Slot:
                def probe(self):
                    return 1
            class Owner:
                def __init__(self, n):
                    self.slots = tuple(Slot() for _ in range(n))
                def scan(self):
                    for slot in self.slots:
                        slot.probe()
            """})
        assert "repro.a:Slot.probe" in p.callees("repro.a:Owner.scan")

    def test_callers_index_inverts_callees(self):
        p = make_project({"src/repro/a.py": """\
            def helper():
                return 1
            def caller():
                return helper()
            """})
        callers = [q for q, _ in p.callers["repro.a:helper"]]
        assert callers == ["repro.a:caller"]


# --------------------------------------------------------------------------- #
# fixpoint engine
# --------------------------------------------------------------------------- #


class TestFixpoint:
    def test_generic_fixpoint_reaches_closure(self):
        graph = {"a": ["b"], "b": ["c"], "c": []}
        facts = fixpoint(
            graph,
            lambda n: frozenset({n}),
            lambda n, get: frozenset().union(
                {n}, *(get(s) for s in graph[n])
            ),
            lambda n: [k for k, succs in graph.items() if n in succs],
        )
        assert facts["a"] == frozenset({"a", "b", "c"})

    def test_transitive_acquires_terminates_on_recursion(self):
        p = make_project({"src/repro/a.py": """\
            import threading
            class C:
                def __init__(self):
                    self.a_lock = threading.Lock()
                    self.b_lock = threading.Lock()
                def f(self):
                    with self.a_lock:
                        pass
                    self.g()
                def g(self):
                    with self.b_lock:
                        pass
                    self.f()
            """})
        acq = transitive_acquires(p)
        both = frozenset({"repro.a:C.a_lock", "repro.a:C.b_lock"})
        assert acq["repro.a:C.f"] == both
        assert acq["repro.a:C.g"] == both

    def test_narrow_returns_terminates_on_mutual_recursion(self):
        p = make_project({"src/repro/machine/a.py": """\
            import numpy as np
            def f(n):
                return g(n)
            def g(n):
                return f(n)
            def seeded(n):
                return np.int32(n)
            def wrapper(n):
                return seeded(n)
            """})
        nr = narrow_returns(p)
        assert nr["repro.machine.a:f"] is False
        assert nr["repro.machine.a:g"] is False
        assert nr["repro.machine.a:seeded"] is True
        assert nr["repro.machine.a:wrapper"] is True

    def test_entry_locks_meet_over_call_sites(self):
        p = make_project({"src/repro/a.py": """\
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def always_locked(self):
                    with self._lock:
                        self.helper()
                def sometimes(self):
                    with self._lock:
                        self.shared()
                def never(self):
                    self.shared()
                def helper(self):
                    pass
                def shared(self):
                    pass
            """})
        ent = entry_locks(p)
        assert ent["repro.a:C.helper"] == frozenset({"repro.a:C._lock"})
        # One unlocked call site kills the guarantee (meet = intersection).
        assert ent["repro.a:C.shared"] == frozenset()
        # No resolved callers at all: unconstrained, reported as empty.
        assert ent["repro.a:C.always_locked"] == frozenset()


# --------------------------------------------------------------------------- #
# numeric-safety
# --------------------------------------------------------------------------- #


def ns_rule():
    return NumericSafetyRule({"model-paths": ["src/repro/machine"]})


class TestNumericSafety:
    def check(self, src):
        p = make_project({"src/repro/machine/x.py": src})
        return ns_rule().check_project(p)

    def test_narrow_mult_fires(self):
        findings = self.check("""\
            import numpy as np
            def f(n, h):
                a = np.arange(n, dtype=np.int32)
                return a * h
            """)
        assert [f.rule for f in findings] == ["numeric-safety"]
        assert "overflow" in findings[0].message

    def test_narrow_through_helper_return_fires(self):
        findings = self.check("""\
            import numpy as np
            def idx(n):
                return np.arange(n, dtype=np.int32)
            def f(n, h):
                return idx(n) * h
            """)
        assert len(findings) == 1
        assert "int32-narrowed" in findings[0].message

    def test_astype_narrowing_of_product_is_fine(self):
        # The repo idiom: arithmetic at int64, narrowed only at the edge.
        findings = self.check("""\
            import numpy as np
            def f(n, h):
                return (np.arange(n, dtype=np.int64) * h).astype(np.int32)
            """)
        assert findings == []

    def test_floordiv_mod_sub_on_narrow_are_fine(self):
        findings = self.check("""\
            import numpy as np
            def f(n, c):
                a = np.arange(n, dtype=np.int32)
                return a // c, a % c, a - c
            """)
        assert findings == []

    def test_float32_accumulator_fires(self):
        findings = self.check("""\
            import numpy as np
            def f(x):
                return np.sum(x, dtype=np.float32)
            """)
        assert len(findings) == 1
        assert "float64" in findings[0].message

    def test_narrow_int_accumulator_fires(self):
        findings = self.check("""\
            import numpy as np
            def f(x):
                return x.sum(dtype="int32")
            """)
        assert len(findings) == 1
        assert "narrow int accumulator" in findings[0].message

    def test_default_sum_is_fine(self):
        findings = self.check("""\
            import numpy as np
            def f(x):
                return np.sum(x) + x.sum(axis=0).sum()
            """)
        assert findings == []

    def test_fsum_fires(self):
        findings = self.check("""\
            import math
            def f(xs):
                return math.fsum(xs)
            """)
        assert len(findings) == 1
        assert "fsum" in findings[0].message

    def test_builtin_sum_over_numpy_array_fires(self):
        findings = self.check("""\
            import numpy as np
            def f(n):
                x = np.linspace(0.0, 1.0, n)
                return sum(x)
            """)
        assert len(findings) == 1
        assert "builtin sum()" in findings[0].message

    def test_builtin_sum_over_list_is_fine(self):
        findings = self.check("""\
            def f(xs):
                rows = [len(x) for x in xs]
                return sum(rows)
            """)
        assert findings == []

    def test_matmul_on_narrow_fires(self):
        findings = self.check("""\
            import numpy as np
            def f(a, n):
                b = np.ones(n, dtype=np.int16)
                return a @ b
            """)
        assert len(findings) == 1
        assert "'@'" in findings[0].message

    def test_out_of_scope_path_is_ignored(self):
        p = make_project({"src/repro/serve/x.py": textwrap.dedent("""\
            import numpy as np
            def f(n, h):
                return np.arange(n, dtype=np.int32) * h
            """)})
        assert ns_rule().check_project(p) == []


# --------------------------------------------------------------------------- #
# lock-order
# --------------------------------------------------------------------------- #


def lo_rule():
    return LockOrderRule({"paths": ["src/repro"]})


class TestLockOrder:
    def test_inverted_order_across_methods_fires(self):
        p = make_project({"src/repro/fleet/y.py": """\
            import threading
            class S:
                def __init__(self):
                    self.a_lock = threading.Lock()
                    self.b_lock = threading.Lock()
                def one(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass
                def two(self):
                    with self.b_lock:
                        self.helper()
                def helper(self):
                    with self.a_lock:
                        pass
            """})
        findings = lo_rule().check_project(p)
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message
        assert "a_lock" in findings[0].message
        assert "b_lock" in findings[0].message

    def test_consistent_order_is_fine(self):
        p = make_project({"src/repro/fleet/y.py": """\
            import threading
            class S:
                def __init__(self):
                    self.a_lock = threading.Lock()
                    self.b_lock = threading.Lock()
                def one(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass
                def two(self):
                    with self.a_lock:
                        self.helper()
                def helper(self):
                    with self.b_lock:
                        pass
            """})
        assert lo_rule().check_project(p) == []

    def test_sequential_acquisition_is_fine(self):
        p = make_project({"src/repro/fleet/y.py": """\
            import threading
            class S:
                def __init__(self):
                    self.a_lock = threading.Lock()
                    self.b_lock = threading.Lock()
                def one(self):
                    with self.a_lock:
                        pass
                    with self.b_lock:
                        pass
                def two(self):
                    with self.b_lock:
                        pass
                    with self.a_lock:
                        pass
            """})
        assert lo_rule().check_project(p) == []

    def test_self_reacquisition_through_helper_fires(self):
        p = make_project({"src/repro/fleet/y.py": """\
            import threading
            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                def outer(self):
                    with self._lock:
                        self.inner()
                def inner(self):
                    with self._lock:
                        pass
            """})
        findings = lo_rule().check_project(p)
        assert len(findings) == 1
        assert "re-acquired" in findings[0].message


# --------------------------------------------------------------------------- #
# stats-contract
# --------------------------------------------------------------------------- #


class TestStatsContract:
    CONSUMER = """\
        KEYS = ("requests", "errors")
        def merge(worker_stats):
            out = {{key: 0 for key in KEYS}}
            for stats in worker_stats:
                for key in KEYS:
                    out[key] += stats.get(key, 0)
                out["lat"] = stats.get("{latency_key}", 0.0)
                sub = stats.get("nested", {{}}).get("inner")
            return out
        """
    PRODUCER = """\
        class Svc:
            def stats(self):
                return {
                    "requests": 1, "errors": 0, "mean_latency_s": 0.0,
                    "nested": {"inner": 1},
                }
        """

    def project(self, latency_key):
        return make_project({
            "src/repro/fleet/b.py": self.CONSUMER.format(
                latency_key=latency_key
            ),
            "src/repro/serve/s.py": self.PRODUCER,
        })

    def rule(self):
        return StatsContractRule({
            "consumers": ["repro.fleet.b:merge"],
            "producers": ["repro.serve.s:Svc.stats"],
        })

    def test_all_keys_produced_is_clean(self):
        assert self.rule().check_project(self.project("mean_latency_s")) == []

    def test_unproduced_key_fires(self):
        findings = self.rule().check_project(self.project("mean_latency"))
        assert len(findings) == 1
        assert "'mean_latency'" in findings[0].message
        assert "no configured producer" in findings[0].message

    def test_assume_produced_escape_hatch(self):
        rule = StatsContractRule({
            "consumers": ["repro.fleet.b:merge"],
            "producers": ["repro.serve.s:Svc.stats"],
            "assume-produced": ["mean_latency"],
        })
        assert rule.check_project(self.project("mean_latency")) == []

    REGISTRY = """\
        EVENT_SCHEMAS = {
            "ping": frozenset({"a", "b"}),
            "quiet": frozenset({"x"}),
        }
        """

    def test_unemitted_kind_fires(self):
        p = make_project({
            "src/repro/engine/reg.py": self.REGISTRY,
            "src/repro/engine/emit.py": """\
                def go(bus):
                    bus.emit("ping", a=1, b=2)
                """,
        })
        rule = StatsContractRule({"registry-module": "repro.engine.reg"})
        findings = rule.check_project(p)
        assert len(findings) == 1
        assert "'quiet'" in findings[0].message
        assert "never emitted" in findings[0].message
        assert findings[0].path == "src/repro/engine/reg.py"

    def test_unproduced_field_fires(self):
        p = make_project({
            "src/repro/engine/reg.py": self.REGISTRY,
            "src/repro/engine/emit.py": """\
                def go(bus):
                    bus.emit("ping", a=1)
                    bus.emit("quiet", x=1)
                """,
        })
        rule = StatsContractRule({"registry-module": "repro.engine.reg"})
        findings = rule.check_project(p)
        assert len(findings) == 1
        assert "field 'b'" in findings[0].message

    def test_splat_emit_covers_all_fields(self):
        p = make_project({
            "src/repro/engine/reg.py": self.REGISTRY,
            "src/repro/engine/emit.py": """\
                def go(bus, ev):
                    bus.emit("ping", **ev)
                    bus.emit("quiet", x=1)
                """,
        })
        rule = StatsContractRule({"registry-module": "repro.engine.reg"})
        assert rule.check_project(p) == []

    REPORTER = """\
        EVENT_SCHEMAS = {{
            "ping": frozenset({{"a", "b"}}),
            "pong": frozenset({{"c"}}),
        }}
        def report(event):
            kind = event.get("event")
            if kind == "ping":
                print(event["a"], event.get("{field}"))
            if kind == "ping" and event.get("b"):
                print(event["ts"])
        def emit_all(bus):
            bus.emit("ping", a=1, b=2)
            bus.emit("pong", c=3)
        """

    def reporter_project(self, field):
        return make_project({
            "src/repro/engine/reg.py": self.REPORTER.format(field=field),
        })

    def reporter_rule(self):
        return StatsContractRule({
            "registry-module": "repro.engine.reg",
            "reporter-paths": ["src/repro/engine/reg.py"],
        })

    def test_reporter_within_schema_is_clean(self):
        p = self.reporter_project("b")
        assert self.reporter_rule().check_project(p) == []

    def test_reporter_field_outside_kind_schema_fires(self):
        # "c" belongs to pong, read under the ping branch.
        p = self.reporter_project("c")
        findings = self.reporter_rule().check_project(p)
        assert len(findings) == 1
        assert "'c'" in findings[0].message
        assert "ping" in findings[0].message

    def test_ungoverned_read_checked_against_union(self):
        p = make_project({"src/repro/engine/reg.py": """\
            EVENT_SCHEMAS = {
                "ping": frozenset({"a"}),
            }
            def report(event):
                print(event.get("zzz"))
            def emit_all(bus):
                bus.emit("ping", a=1)
            """})
        findings = self.reporter_rule().check_project(p)
        assert len(findings) == 1
        assert "'zzz'" in findings[0].message
        assert "any kind" in findings[0].message


# --------------------------------------------------------------------------- #
# interprocedural lock-discipline
# --------------------------------------------------------------------------- #


class TestLockDisciplineInterprocedural:
    SRC = """\
        import threading
        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._stats = {{}}
            def bump(self, k):
                with self._lock:
                    self._apply(k)
            def _apply(self, k):
                self._stats[k] = self._stats.get(k, 0) + 1
            def reset(self):
                {reset_body}
        """

    def project(self, reset_body):
        return make_project({
            "src/repro/serve/c.py": self.SRC.format(reset_body=reset_body)
        })

    def rule(self):
        return LockDisciplineRule({"paths": ["src/repro/serve"]})

    def test_entry_locked_helper_is_not_flagged(self):
        p = self.project("pass")
        assert self.rule().check_project(p) == []

    def test_unlocked_path_to_helper_protected_attr_fires(self):
        p = self.project("self._stats = {}")
        findings = self.rule().check_project(p)
        assert len(findings) == 1
        assert "_stats" in findings[0].message
        assert findings[0].rule == "lock-discipline"

    def test_locked_reset_is_clean(self):
        p = self.project(
            "with self._lock:\n                    self._stats = {}"
        )
        assert self.rule().check_project(p) == []


# --------------------------------------------------------------------------- #
# unused-suppression (runner-level, full runs only)
# --------------------------------------------------------------------------- #


class TestUnusedSuppression:
    def setup_project(self, tmp_path, source):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent(source))
        return LintConfig(
            root=tmp_path, paths=("pkg",),
            rules={"float-equality": {"paths": []}},
        )

    def test_stale_suppression_reported_on_full_run(self, tmp_path):
        config = self.setup_project(tmp_path, """\
            def f(x):
                return x + 1  # repro: noqa[float-equality] nothing here anymore
            """)
        result = run_lint(config)
        assert [f.rule for f in result.findings] == ["unused-suppression"]
        assert "stale" in result.findings[0].message

    def test_live_suppression_not_reported(self, tmp_path):
        config = self.setup_project(tmp_path, """\
            def f(x):
                return x == 1.5  # repro: noqa[float-equality] fixture sentinel
            """)
        result = run_lint(config)
        assert result.findings == []
        assert result.suppressed == 1

    def test_rule_subset_skips_staleness(self, tmp_path):
        config = self.setup_project(tmp_path, """\
            def f(x):
                return x + 1  # repro: noqa[float-equality] nothing here anymore
            """)
        result = run_lint(config, only=("float-equality",))
        assert result.findings == []

    def test_malformed_still_reported_once(self, tmp_path):
        config = self.setup_project(tmp_path, """\
            def f(x):
                return x + 1  # repro: noqa[float-equality]
            """)
        result = run_lint(config)
        # No reason given: malformed, not double-reported as stale.
        assert [f.rule for f in result.findings] == ["suppression"]


# --------------------------------------------------------------------------- #
# seeded injections against the real tree
# --------------------------------------------------------------------------- #


class TestSeededInjections:
    def test_int32_narrowing_edit_in_batch_is_caught(self):
        rel = "src/repro/machine/batch.py"
        pristine = (REPO_ROOT / rel).read_text()
        seeded = pristine.replace(
            "np.arange(n_h + 1, dtype=np.int64) * h",
            "np.arange(n_h + 1, dtype=np.int32) * h",
        )
        assert seeded != pristine, "injection site moved; update the test"
        rule = NumericSafetyRule({"model-paths": ["src/repro/machine"]})

        clean = rule.check_project(build_project({
            rel: FileContext(REPO_ROOT / rel, rel, pristine)
        }))
        assert clean == []

        findings = rule.check_project(build_project({
            rel: FileContext(REPO_ROOT / rel, rel, seeded)
        }))
        assert len(findings) == 1
        assert findings[0].rule == "numeric-safety"
        assert "'*'" in findings[0].message
        assert "np.arange(n_h + 1, dtype=np.int32) * h" in findings[0].snippet

    SUPERVISOR_MIRROR = """\
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class WorkerSlot:
            index: int
            ready: bool = False
            lock: threading.Lock = field(default_factory=threading.Lock)

        class FleetSupervisor:
            def __init__(self, n):
                self._restart_lock = threading.Lock()
                self._restarting = set()
                self.slots = tuple(WorkerSlot(index=i) for i in range(n))

            def _begin_restart(self, slot: WorkerSlot):
                # Inverted vs replace_worker: slot.lock then _restart_lock.
                with slot.lock:
                    with self._restart_lock:
                        self._restarting.add(slot.index)
                    slot.ready = False

            def replace_worker(self, index):
                slot = self.slots[index]
                with self._restart_lock:
                    self._mark(slot)

            def _mark(self, slot: WorkerSlot):
                with slot.lock:
                    slot.ready = True
        """

    def test_inverted_lock_order_mirroring_supervisor_is_caught(self):
        p = make_project({
            "src/repro/fleet/mirror.py": self.SUPERVISOR_MIRROR
        })
        findings = LockOrderRule(
            {"paths": ["src/repro/fleet"]}
        ).check_project(p)
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message
        assert "WorkerSlot.lock" in findings[0].message
        assert "FleetSupervisor._restart_lock" in findings[0].message

    def test_real_supervisor_lock_order_is_clean(self):
        p = repo_project([
            "src/repro/fleet/supervisor.py",
            "src/repro/fleet/balancer.py",
        ])
        rule = LockOrderRule({"paths": ["src/repro/fleet"]})
        assert rule.check_project(p) == []

    FANIN_FILES = [
        "src/repro/fleet/balancer.py",
        "src/repro/serve/service.py",
        "src/repro/learn/runtime.py",
        "src/repro/learn/shadow.py",
        "src/repro/resilience/guard.py",
    ]

    def stats_rule(self):
        settings = load_config(REPO_ROOT).rules.get("stats-contract", {})
        # Drop the registry/reporter checks: this project subset only
        # contains the fan-in files.
        settings = dict(settings)
        settings["registry-module"] = "absent.module"
        settings["reporter-paths"] = []
        return StatsContractRule(settings)

    def test_renamed_stats_key_in_fanin_is_caught(self):
        overrides = {
            "src/repro/fleet/balancer.py": {
                '"cache_hits"': '"cache_hitz"',
            },
        }
        p = repo_project(self.FANIN_FILES, overrides)
        findings = self.stats_rule().check_project(p)
        assert len(findings) == 1
        assert findings[0].rule == "stats-contract"
        assert "'cache_hitz'" in findings[0].message
        assert findings[0].path == "src/repro/fleet/balancer.py"

    def test_real_fanin_contract_is_clean(self):
        p = repo_project(self.FANIN_FILES)
        assert self.stats_rule().check_project(p) == []
