"""Tests for the BCSR format (aligned fixed-size blocks with padding)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import BCSRMatrix, COOMatrix
from repro.kernels import spmv_bcsr_scalar
from repro.types import BlockShape

from .conftest import make_random_coo


class TestGeometry:
    def test_single_full_block(self):
        coo = COOMatrix.from_dense(np.arange(1, 5, dtype=float).reshape(2, 2))
        bcsr = BCSRMatrix.from_coo(coo, (2, 2))
        assert bcsr.n_blocks == 1
        assert bcsr.padding == 0
        np.testing.assert_array_equal(bcsr.bval[0], [[1, 2], [3, 4]])

    def test_alignment_forces_padding(self):
        """A 2x2 block of nonzeros that straddles the alignment grid needs
        four aligned blocks (the effect Fig. 1 illustrates)."""
        dense = np.zeros((4, 4))
        dense[1:3, 1:3] = 1.0
        bcsr = BCSRMatrix.from_coo(COOMatrix.from_dense(dense), (2, 2))
        assert bcsr.n_blocks == 4
        assert bcsr.nnz == 4
        assert bcsr.padding == 12

    def test_block_anchors_are_aligned(self):
        coo = make_random_coo(30, 40, 150, seed=3, with_values=False)
        bcsr = BCSRMatrix.from_coo(coo, (3, 4), with_values=False)
        starts = bcsr.x_access_stream().starts
        assert np.all(starts % 4 == 0)

    def test_edge_blocks_when_shape_not_divisible(self):
        coo = COOMatrix(5, 5, [4], [4], [7.0])
        bcsr = BCSRMatrix.from_coo(coo, (2, 2))
        assert bcsr.n_block_rows == 3  # ceil(5/2)
        assert bcsr.n_blocks == 1
        np.testing.assert_array_equal(
            bcsr.to_dense(), COOMatrix(5, 5, [4], [4], [7.0]).to_dense()
        )

    def test_nnz_stored_counts_padding(self):
        coo = make_random_coo(24, 24, 60, seed=4)
        bcsr = BCSRMatrix.from_coo(coo, (2, 3))
        assert bcsr.nnz_stored == bcsr.n_blocks * 6
        assert bcsr.padding_ratio >= 1.0


class TestAccounting:
    @pytest.mark.parametrize("r,c", [(1, 2), (2, 2), (4, 2), (1, 8)])
    def test_working_set_formula(self, r, c):
        coo = make_random_coo(40, 40, 200, seed=5)
        bcsr = BCSRMatrix.from_coo(coo, (r, c))
        nb = bcsr.n_blocks
        n_brows = -(-40 // r)
        e = 8
        expected = (
            e * nb * r * c + 4 * nb + 4 * (n_brows + 1) + e * (40 + 40)
        )
        assert bcsr.working_set("dp") == expected

    def test_descriptor(self):
        coo = make_random_coo(10, 10, 20, seed=6)
        bcsr = BCSRMatrix.from_coo(coo, BlockShape(2, 4))
        assert bcsr.block_descriptor() == ("bcsr", (2, 4))

    def test_block_rows_of_blocks_matches_ptr(self):
        coo = make_random_coo(33, 33, 170, seed=7, with_values=False)
        bcsr = BCSRMatrix.from_coo(coo, (3, 3), with_values=False)
        brows = bcsr.block_rows_of_blocks()
        assert brows.shape[0] == bcsr.n_blocks
        assert np.all(np.diff(brows) >= 0)
        counts = np.bincount(brows, minlength=bcsr.n_block_rows)
        np.testing.assert_array_equal(counts, np.diff(bcsr.brow_ptr))


class TestSpmv:
    @pytest.mark.parametrize("r,c", [(1, 2), (2, 1), (2, 2), (3, 2), (2, 4), (1, 8), (8, 1)])
    def test_matches_dense_reference(self, r, c, small_coo, small_x):
        bcsr = BCSRMatrix.from_coo(small_coo, (r, c))
        expected = small_coo.to_dense() @ small_x
        np.testing.assert_allclose(bcsr.spmv(small_x), expected)

    def test_scalar_kernel_matches(self, small_coo, small_x):
        bcsr = BCSRMatrix.from_coo(small_coo, (2, 3))
        out = np.zeros(bcsr.nrows)
        spmv_bcsr_scalar(bcsr, small_x, out)
        np.testing.assert_allclose(out, bcsr.spmv(small_x))

    def test_column_overhang(self):
        """Blocks hanging past the last column must not read out of x."""
        coo = COOMatrix(2, 5, [0, 1], [4, 4], [3.0, 5.0])
        bcsr = BCSRMatrix.from_coo(coo, (2, 3))
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(bcsr.spmv(x), [15.0, 25.0])

    def test_row_overhang(self):
        coo = COOMatrix(5, 2, [4, 4], [0, 1], [1.0, 2.0])
        bcsr = BCSRMatrix.from_coo(coo, (3, 2))
        y = bcsr.spmv(np.array([10.0, 1.0]))
        np.testing.assert_allclose(y, [0, 0, 0, 0, 12.0])

    def test_structure_only_rejects_spmv(self, small_coo):
        bcsr = BCSRMatrix.from_coo(small_coo, (2, 2), with_values=False)
        with pytest.raises(FormatError):
            bcsr.spmv(np.ones(small_coo.ncols))


class TestValidation:
    def test_rejects_wrong_bval_shape(self):
        with pytest.raises(FormatError):
            BCSRMatrix(
                4, 4, BlockShape(2, 2),
                np.array([0, 1, 1]), np.array([0]),
                np.zeros((1, 2, 3)), nnz=1,
            )

    def test_rejects_wrong_ptr_length(self):
        with pytest.raises(FormatError):
            BCSRMatrix(
                4, 4, BlockShape(2, 2),
                np.array([0, 1]), np.array([0]),
                np.zeros((1, 2, 2)), nnz=1,
            )
