"""Tests for the element-granularity x-access streams."""

import numpy as np
import pytest

from repro.formats import build_format
from repro.formats.base import XAccessStream

from .conftest import make_random_coo


class TestXAccessStream:
    def test_width_one_passthrough(self):
        s = XAccessStream(np.array([3, 7, 1]), 1)
        np.testing.assert_array_equal(s.element_columns(), [3, 7, 1])
        assert s.n_elements == 3

    def test_fixed_width_expansion(self):
        s = XAccessStream(np.array([0, 10]), 3)
        np.testing.assert_array_equal(
            s.element_columns(), [0, 1, 2, 10, 11, 12]
        )
        assert s.n_elements == 6

    def test_variable_width_expansion(self):
        s = XAccessStream(np.array([5, 20]), 2, widths=np.array([1, 3]))
        np.testing.assert_array_equal(s.element_columns(), [5, 20, 21, 22])
        assert s.n_elements == 4

    def test_widths_length_checked(self):
        with pytest.raises(ValueError):
            XAccessStream(np.array([1, 2]), 1, widths=np.array([1]))

    def test_line_ids_clip_negative(self):
        s = XAccessStream(np.array([-3]), 2)
        assert s.line_ids(8).tolist() == [0, 0]

    def test_line_ids_rejects_bad_line(self):
        with pytest.raises(ValueError):
            XAccessStream(np.array([0]), 1).line_ids(0)


class TestFormatStreamsAreElementExact:
    """Each format's expanded stream covers exactly its stored elements'
    column positions (padding included for the padded formats)."""

    def test_csr_stream_is_col_ind(self, small_coo):
        csr = build_format(small_coo, "csr", with_values=False)
        np.testing.assert_array_equal(
            csr.x_access_stream().element_columns(), csr.col_ind
        )

    def test_bcsr_stream_counts_padding(self, small_coo):
        bcsr = build_format(small_coo, "bcsr", (2, 3), with_values=False)
        cols = bcsr.x_access_stream().element_columns()
        assert cols.shape[0] == bcsr.n_blocks * 3  # c elements per block
        assert (cols % 3 == np.tile([0, 1, 2], bcsr.n_blocks)).all()

    def test_vbl_stream_matches_true_columns(self, small_coo):
        vbl = build_format(small_coo, "vbl", with_values=False)
        cols = np.sort(vbl.x_access_stream().element_columns())
        np.testing.assert_array_equal(cols, np.sort(small_coo.cols))

    def test_bcsd_stream_covers_diagonal_span(self):
        coo = make_random_coo(24, 24, 80, seed=77, with_values=False)
        bcsd = build_format(coo, "bcsd", 4, with_values=False)
        cols = bcsd.x_access_stream().element_columns()
        assert cols.shape[0] == bcsd.n_blocks * 4

    def test_vbr_stream_element_count(self, small_coo):
        vbr = build_format(small_coo, "vbr", with_values=False)
        assert (
            vbr.x_access_stream().n_elements == vbr.nnz_stored
        )
