"""Tests for the multithreading partition substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.formats import build_format
from repro.parallel import (
    balanced_partition,
    block_ptr_of,
    stored_per_block_row,
)

from .conftest import make_random_coo


class TestBalancedPartition:
    def test_single_thread_covers_all(self):
        p = balanced_partition(np.ones(10), 1)
        assert p.boundaries.tolist() == [0, 10]

    def test_boundaries_monotone_and_cover(self):
        rng = np.random.default_rng(0)
        w = rng.integers(1, 50, 100).astype(float)
        p = balanced_partition(w, 4)
        b = p.boundaries
        assert b[0] == 0 and b[-1] == 100
        assert np.all(np.diff(b) >= 0)
        assert p.nthreads == 4

    def test_uniform_weights_split_evenly(self):
        p = balanced_partition(np.ones(100), 4)
        assert p.boundaries.tolist() == [0, 25, 50, 75, 100]

    def test_balance_quality(self):
        """No thread exceeds the ideal share by more than one max weight."""
        rng = np.random.default_rng(1)
        w = rng.integers(1, 100, 500).astype(float)
        for k in (2, 3, 4, 8):
            p = balanced_partition(w, k)
            sums = p.segment_sums(w)
            assert sums.max() <= w.sum() / k + w.max()

    def test_heavy_single_row(self):
        """A single enormous row dominates one thread, the rest share."""
        w = np.ones(50)
        w[10] = 1000.0
        p = balanced_partition(w, 4)
        sums = p.segment_sums(w)
        assert sums.max() >= 1000.0
        assert p.boundaries[-1] == 50

    def test_zero_weights(self):
        p = balanced_partition(np.zeros(20), 4)
        assert p.boundaries[0] == 0 and p.boundaries[-1] == 20

    def test_more_threads_than_rows(self):
        p = balanced_partition(np.ones(2), 4)
        assert p.boundaries[-1] == 2
        assert p.nthreads == 4  # some threads own nothing

    def test_rejects_zero_threads(self):
        with pytest.raises(ModelError):
            balanced_partition(np.ones(4), 0)

    def test_segment_sums(self):
        w = np.array([1.0, 2, 3, 4, 5, 6])
        p = balanced_partition(w, 2)
        sums = p.segment_sums(w)
        assert sums.sum() == pytest.approx(21.0)

    @given(
        n=st.integers(1, 200),
        k=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_cover_and_order(self, n, k, seed):
        w = np.random.default_rng(seed).integers(0, 20, n).astype(float)
        p = balanced_partition(w, k)
        b = p.boundaries
        assert b.shape[0] == k + 1
        assert b[0] == 0 and b[-1] == n
        assert np.all(np.diff(b) >= 0)
        assert p.segment_sums(w).sum() == pytest.approx(w.sum())


class TestFormatWeights:
    @pytest.mark.parametrize("kind,block", [
        ("csr", None),
        ("bcsr", (2, 3)),
        ("bcsd", 4),
        ("vbl", None),
        ("ubcsr", (2, 2)),
        ("vbr", None),
    ])
    def test_weights_sum_to_stored(self, kind, block):
        coo = make_random_coo(36, 36, 200, seed=61, with_values=False)
        fmt = build_format(coo, kind, block, with_values=False)
        w = stored_per_block_row(fmt)
        assert w.shape[0] == fmt.n_block_rows
        assert int(w.sum()) == fmt.nnz_stored

    def test_padding_aware_weights(self):
        """BCSR weights count the padding zeros — the paper's balancing
        criterion ('we also accounted for the extra zero elements')."""
        coo = make_random_coo(36, 36, 200, seed=62, with_values=False)
        bcsr = build_format(coo, "bcsr", (2, 4), with_values=False)
        assert int(stored_per_block_row(bcsr).sum()) > coo.nnz

    @pytest.mark.parametrize("kind,block", [
        ("csr", None), ("bcsr", (2, 3)), ("bcsd", 4), ("vbl", None),
    ])
    def test_block_ptr_brackets_stream(self, kind, block):
        coo = make_random_coo(36, 36, 200, seed=63, with_values=False)
        fmt = build_format(coo, kind, block, with_values=False)
        ptr = block_ptr_of(fmt)
        assert ptr[0] == 0
        assert ptr[-1] == len(fmt.x_access_stream())
