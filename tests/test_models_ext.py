"""Tests for the extended (future work) models: overlap+lat."""

import pytest

from repro.core import get_model, profile_machine
from repro.core.models_ext import (
    OverlapLatencyModel,
    estimate_format_misses,
    register_extended_models,
)
from repro.errors import ModelError
from repro.formats import build_format
from repro.machine import CORE2_XEON, simulate
from repro.matrices.generators import grid2d, powerlaw_graph


@pytest.fixture(scope="module")
def lat_profile():
    return profile_machine(CORE2_XEON, "dp", calibrate_latency=True)


@pytest.fixture(scope="module")
def latency_matrix():
    return powerlaw_graph(400_000, 1_600_000, alpha=1.7, seed=21)


@pytest.fixture(scope="module")
def regular_matrix():
    return grid2d(110, 110, 5, dof=3, drop_fraction=0.2, seed=22)


class TestCalibration:
    def test_latency_cost_positive_and_sane(self, lat_profile):
        assert lat_profile.latency_cost_s is not None
        # Must be within a factor of ~2 of the machine's effective latency.
        eff = CORE2_XEON.effective_latency_s()
        assert eff / 2 < lat_profile.latency_cost_s < eff * 2

    def test_plain_profile_has_no_latency(self, machine):
        prof = profile_machine(machine, "dp")
        assert prof.latency_cost_s is None


class TestMissEstimate:
    def test_zero_for_regular(self, regular_matrix, machine):
        csr = build_format(regular_matrix, "csr", with_values=False)
        assert estimate_format_misses(csr, machine, "dp") == 0

    def test_positive_for_irregular(self, latency_matrix, machine):
        csr = build_format(latency_matrix, "csr", with_values=False)
        assert estimate_format_misses(csr, machine, "dp") > 0


class TestOverlapLatModel:
    def test_fixes_latency_bound_prediction(
        self, latency_matrix, machine, lat_profile
    ):
        csr = build_format(latency_matrix, "csr", with_values=False)
        real = simulate(csr, machine, "dp", "scalar").t_total
        base = get_model("overlap").predict(
            csr, machine, "dp", "scalar", lat_profile
        )
        ext = OverlapLatencyModel().predict(
            csr, machine, "dp", "scalar", lat_profile
        )
        assert abs(ext / real - 1) < 0.15
        assert abs(ext / real - 1) < abs(base / real - 1) / 3

    def test_no_regression_on_regular(
        self, regular_matrix, machine, lat_profile
    ):
        csr = build_format(regular_matrix, "csr", with_values=False)
        base = get_model("overlap").predict(
            csr, machine, "dp", "scalar", lat_profile
        )
        ext = OverlapLatencyModel().predict(
            csr, machine, "dp", "scalar", lat_profile
        )
        assert ext == pytest.approx(base)  # zero misses -> identical

    def test_requires_calibrated_profile(self, regular_matrix, machine):
        prof = profile_machine(machine, "dp")
        csr = build_format(regular_matrix, "csr", with_values=False)
        with pytest.raises(ModelError):
            OverlapLatencyModel().predict(csr, machine, "dp", "scalar", prof)

    def test_registration(self):
        register_extended_models()
        assert get_model("overlap+lat").name == "overlap+lat"
