"""Tests for the command-line interface."""

import pytest

from repro import cli
from repro.bench.harness import SweepConfig, run_sweep

from .test_experiments import MINI_SUITE


class TestParser:
    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["tableX"])

    def test_requires_an_experiment(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestColind:
    def test_colind_runs_without_sweep(self, capsys, monkeypatch):
        # Patch the latency-bound set down to one matrix to keep it fast.
        from repro.bench import experiments

        original = experiments.colind_zero

        def fast_colind():
            return original(matrix_ids=(12,))

        monkeypatch.setattr(experiments, "colind_zero", fast_colind)
        assert cli.main(["colind"]) == 0
        out = capsys.readouterr().out
        assert "col_ind=0" in out
        assert "wikipedia" in out


class TestSweepDriven:
    @pytest.fixture()
    def tiny_cache(self, tmp_path, monkeypatch):
        """Pre-populate the cache dir with a mini-suite sweep so the CLI
        does not run the real 30-matrix sweep."""
        config = SweepConfig()
        sweep = run_sweep(
            MINI_SUITE,
            SweepConfig(precisions=("sp", "dp"), thread_counts=(1, 2, 4)),
        )
        sweep.config = config  # masquerade as the default config
        path = tmp_path / f"sweep_{config.fingerprint()}.json"
        sweep.save(path)
        return tmp_path

    def test_table2_from_cache(self, capsys, tiny_cache):
        assert cli.main(["table2", "--cache-dir", str(tiny_cache)]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_multiple_experiments(self, capsys, tiny_cache):
        assert cli.main(
            ["table3", "fig2", "table4", "--cache-dir", str(tiny_cache)]
        ) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Figure 2" in out
        assert "Table IV" in out

    def test_fig3_fig4_both_precisions(self, capsys, tiny_cache):
        assert cli.main(["fig3", "fig4", "--cache-dir", str(tiny_cache)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 (sp)" in out
        assert "Figure 3 (dp)" in out
        assert "Figure 4 (sp)" in out

    def test_sweep_reports_stats(self, capsys, tiny_cache):
        assert cli.main(["sweep", "--cache-dir", str(tiny_cache)]) == 0
        assert "sweep ready" in capsys.readouterr().out
