"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.bench.harness import SweepConfig, run_sweep

from .test_experiments import MINI_SUITE

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestParser:
    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["tableX"])

    def test_requires_an_experiment(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_resume_and_fresh_conflict(self):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--resume", "--fresh"])


class TestConfigFromArgs:
    def _config(self, *argv):
        args = cli._build_parser().parse_args(["sweep", *argv])
        return cli._config_from_args(args)

    def test_defaults_to_full_config(self):
        assert self._config() == SweepConfig()

    def test_subset_flags(self):
        cfg = self._config(
            "--matrices", "1,27,30", "--precisions", "dp", "--threads", "1,2"
        )
        assert cfg.suite_indices == (1, 27, 30)
        assert cfg.precisions == ("dp",)
        assert cfg.thread_counts == (1, 2)

    @pytest.mark.parametrize("argv,message", [
        (["--jobs", "0"], "--jobs must be >= 1"),
        (["--matrices", "1,99"], "no suite entry 99"),
        (["--matrices", ""], "no suite entries"),
        (["--precisions", ""], "--precisions selected nothing"),
        (["--threads", ""], "--threads selected nothing"),
    ])
    def test_invalid_sweep_flags_fail_cleanly(self, capsys, tmp_path,
                                              argv, message):
        code = cli.main(
            ["sweep", *argv, "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert message in capsys.readouterr().err

    def test_engine_flag_defaults(self):
        args = cli._build_parser().parse_args(["sweep"])
        assert args.jobs is None
        assert args.resume is True
        assert args.run_log is None
        args = cli._build_parser().parse_args(["sweep", "--fresh"])
        assert args.resume is False


class TestColind:
    def test_colind_runs_without_sweep(self, capsys, monkeypatch):
        # Patch the latency-bound set down to one matrix to keep it fast.
        from repro.bench import experiments

        original = experiments.colind_zero

        def fast_colind():
            return original(matrix_ids=(12,))

        monkeypatch.setattr(experiments, "colind_zero", fast_colind)
        assert cli.main(["colind"]) == 0
        out = capsys.readouterr().out
        assert "col_ind=0" in out
        assert "wikipedia" in out


class TestSweepDriven:
    @pytest.fixture()
    def tiny_cache(self, tmp_path, monkeypatch):
        """Pre-populate the cache dir with a mini-suite sweep so the CLI
        does not run the real 30-matrix sweep."""
        config = SweepConfig()
        sweep = run_sweep(
            MINI_SUITE,
            SweepConfig(precisions=("sp", "dp"), thread_counts=(1, 2, 4)),
        )
        sweep.config = config  # masquerade as the default config
        path = tmp_path / f"sweep_{config.fingerprint()}.json"
        sweep.save(path)
        return tmp_path

    def test_table2_from_cache(self, capsys, tiny_cache):
        assert cli.main(["table2", "--cache-dir", str(tiny_cache)]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_multiple_experiments(self, capsys, tiny_cache):
        assert cli.main(
            ["table3", "fig2", "table4", "--cache-dir", str(tiny_cache)]
        ) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Figure 2" in out
        assert "Table IV" in out

    def test_fig3_fig4_both_precisions(self, capsys, tiny_cache):
        assert cli.main(["fig3", "fig4", "--cache-dir", str(tiny_cache)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 (sp)" in out
        assert "Figure 3 (dp)" in out
        assert "Figure 4 (sp)" in out

    def test_sweep_reports_stats(self, capsys, tiny_cache):
        assert cli.main(["sweep", "--cache-dir", str(tiny_cache)]) == 0
        assert "sweep ready" in capsys.readouterr().out


class TestAdviseCLI:
    def test_advise_dense_matches_exhaustive(self, capsys, tmp_path,
                                             machine, shared_profile_cache,
                                             monkeypatch):
        """Acceptance: ``advise dense --top 3`` leads with the candidate the
        exhaustive AutoTuner picks under OVERLAP."""
        from repro.serve import service as service_mod

        # Reuse the session profile so the CLI path skips calibration.
        monkeypatch.setattr(
            service_mod.AdvisorService,
            "__init__",
            _patched_init(shared_profile_cache),
        )
        assert cli.main(
            ["advise", "dense", "--top", "3",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1. BCSR 8x1 simd" in out
        assert "evaluated 33/105 candidates" in out
        assert out.count("ms/spmv") == 3

    def test_advise_json_output(self, capsys, tmp_path,
                                shared_profile_cache, monkeypatch):
        from repro.serve import service as service_mod

        monkeypatch.setattr(
            service_mod.AdvisorService,
            "__init__",
            _patched_init(shared_profile_cache),
        )
        assert cli.main(
            ["advise", "pwtk", "--json", "--cache-dir", str(tmp_path)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ranking"][0]["kind"] == "bcsr"
        assert payload["cache_hit"] is False

    def test_advise_unknown_matrix_fails_cleanly(self, capsys, tmp_path):
        code = cli.main(
            ["advise", "no-such-matrix", "--cache-dir", str(tmp_path)]
        )
        assert code == 1
        assert "no-such-matrix" in capsys.readouterr().err

    def test_advise_rejects_bad_top(self, capsys, tmp_path):
        code = cli.main(
            ["advise", "dense", "--top", "0", "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert "--top" in capsys.readouterr().err

    def test_advise_parser_defaults(self):
        args = cli._build_advise_parser().parse_args(["dense"])
        assert args.model == "overlap"
        assert args.precision == "dp"
        assert args.top == 3
        assert args.prune is True
        assert args.use_cache is True
        args = cli._build_advise_parser().parse_args(
            ["dense", "--no-prune", "--no-cache"]
        )
        assert args.prune is False
        assert args.use_cache is False

    def test_serve_parser_defaults(self):
        args = cli._build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8077
        args = cli._build_serve_parser().parse_args(["--port", "9000"])
        assert args.port == 9000


def _patched_init(profile_cache):
    from repro.serve.service import AdvisorService

    original = AdvisorService.__init__

    def init(self, machine=None, **kwargs):
        kwargs["profile_cache"] = profile_cache
        original(self, machine, **kwargs)

    return init


@pytest.mark.slow
class TestEngineSmoke:
    """Tier-1 end-to-end smoke: a real ``python -m repro sweep --jobs 2``
    on a 3-matrix suite subset against a temp cache dir."""

    ARGS = [
        "sweep", "--jobs", "2",
        "--matrices", "1,27,30", "--precisions", "dp", "--threads", "1",
    ]

    def test_sweep_jobs2_end_to_end(self, tmp_path):
        run_log = tmp_path / "run.jsonl"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *self.ARGS,
             "--cache-dir", str(tmp_path), "--run-log", str(run_log),
             "--progress"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")
                 + os.pathsep + os.environ.get("PYTHONPATH", "")},
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "sweep ready: 3 matrices" in proc.stdout

        # The run log recorded every shard going through the pool.
        events = [json.loads(l) for l in run_log.read_text().splitlines()]
        finished = sorted(
            e["shard"] for e in events if e["event"] == "shard_finish"
        )
        assert finished == [1, 27, 30]
        assert events[0]["jobs"] == 2

        # The monolithic cache was assembled; a second invocation is a
        # pure cache hit (no engine events appended).
        config = SweepConfig(
            suite_indices=(1, 27, 30), precisions=("dp",), thread_counts=(1,)
        )
        assert (tmp_path / f"sweep_{config.fingerprint()}.json").exists()
        n_lines = len(events)
        assert cli.main([*self.ARGS, "--cache-dir", str(tmp_path),
                         "--run-log", str(run_log)]) == 0
        assert len(run_log.read_text().splitlines()) == n_lines
