"""Self-lint: the repo stays clean against its own invariant linter.

This is the machine-checked contract of ``docs/lint.md``: every shipped
rule holds across ``src/`` (modulo the checked-in, deliberately minimal
baseline), and the ``python -m repro lint`` CLI surfaces it.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro import cli
from repro.analysis import (
    apply_baseline,
    load_baseline,
    load_config,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestSelfLint:
    def test_repo_is_clean_against_baseline(self):
        config = load_config(REPO_ROOT)
        result = run_lint(config)
        baseline = load_baseline(config.baseline_path)
        new, _ = apply_baseline(result.findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)
        # The whole src tree was actually walked, not an empty glob.
        assert result.files_checked > 50

    def test_baseline_is_minimal(self):
        # The repo lints clean outright: nothing is grandfathered.  If a
        # rule change makes findings unavoidable, shrink — don't grow —
        # this bound consciously.
        config = load_config(REPO_ROOT)
        assert sum(load_baseline(config.baseline_path).values()) == 0


class TestLintCLI:
    def test_json_smoke(self, capsys):
        code = cli.main(
            ["lint", "--format", "json", "--root", str(REPO_ROOT)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] > 50

    def test_text_summary(self, capsys):
        assert cli.main(["lint", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_single_rule_filter(self, capsys):
        code = cli.main(
            ["lint", "--rule", "determinism", "--root", str(REPO_ROOT)]
        )
        assert code == 0

    def test_unknown_rule_fails_cleanly(self, capsys):
        code = cli.main(
            ["lint", "--rule", "no-such-rule", "--root", str(REPO_ROOT)]
        )
        assert code == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_findings_fail_then_baseline_then_clean(self, tmp_path, capsys):
        """End-to-end baseline workflow on a throwaway project."""
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            paths = ["pkg"]

            [tool.reprolint.rules.float-equality]
            paths = []
            """))
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f(x):\n    return x == 1.5\n")

        assert cli.main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "pkg/mod.py:2: [float-equality]" in out

        assert cli.main(
            ["lint", "--root", str(tmp_path), "--update-baseline"]
        ) == 0
        capsys.readouterr()
        assert (tmp_path / "lint_baseline.json").is_file()

        assert cli.main(["lint", "--root", str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out
