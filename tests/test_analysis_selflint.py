"""Self-lint: the repo stays clean against its own invariant linter.

This is the machine-checked contract of ``docs/lint.md``: every shipped
rule holds across ``src/`` (modulo the checked-in, deliberately minimal
baseline), and the ``python -m repro lint`` CLI surfaces it.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import jsonschema

from repro import cli
from repro.analysis import (
    RULE_REGISTRY,
    apply_baseline,
    load_baseline,
    load_config,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Strict subset of the SARIF 2.1.0 schema covering exactly the shape
#: ``repro.analysis.sarif`` emits.  Embedded because the canonical schema
#: at schemastore.org is unreachable from the test environment; keep in
#: sync with docs/lint.md if the emitter grows new properties.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "$schema": {
            "const": "https://json.schemastore.org/sarif-2.1.0.json"
        },
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "maxItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "originalUriBaseIds": {"type": "object"},
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId", "level", "message", "locations",
                            ],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {
                                            "type": "string",
                                            "minLength": 1,
                                        },
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine",
                                                        ],
                                                        "properties": {
                                                            "startLine": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "partialFingerprints": {"type": "object"},
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSelfLint:
    def test_repo_is_clean_against_baseline(self):
        config = load_config(REPO_ROOT)
        result = run_lint(config)
        baseline = load_baseline(config.baseline_path)
        new, _ = apply_baseline(result.findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)
        # The whole src tree was actually walked, not an empty glob.
        assert result.files_checked > 50

    def test_baseline_is_minimal(self):
        # The repo lints clean outright: nothing is grandfathered.  If a
        # rule change makes findings unavoidable, shrink — don't grow —
        # this bound consciously.
        config = load_config(REPO_ROOT)
        assert sum(load_baseline(config.baseline_path).values()) == 0


class TestLintCLI:
    def test_json_smoke(self, capsys):
        code = cli.main(
            ["lint", "--format", "json", "--root", str(REPO_ROOT)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] > 50

    def test_text_summary(self, capsys):
        assert cli.main(["lint", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_single_rule_filter(self, capsys):
        code = cli.main(
            ["lint", "--rule", "determinism", "--root", str(REPO_ROOT)]
        )
        assert code == 0

    def test_unknown_rule_fails_cleanly(self, capsys):
        code = cli.main(
            ["lint", "--rule", "no-such-rule", "--root", str(REPO_ROOT)]
        )
        assert code == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_findings_fail_then_baseline_then_clean(self, tmp_path, capsys):
        """End-to-end baseline workflow on a throwaway project."""
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            paths = ["pkg"]

            [tool.reprolint.rules.float-equality]
            paths = []
            """))
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f(x):\n    return x == 1.5\n")

        assert cli.main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "pkg/mod.py:2: [float-equality]" in out

        assert cli.main(
            ["lint", "--root", str(tmp_path), "--update-baseline"]
        ) == 0
        capsys.readouterr()
        assert (tmp_path / "lint_baseline.json").is_file()

        assert cli.main(["lint", "--root", str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out


class TestSarifOutput:
    def test_clean_repo_sarif_validates(self, capsys):
        code = cli.main(
            ["lint", "--format", "sarif", "--root", str(REPO_ROOT)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        jsonschema.validate(payload, SARIF_SUBSET_SCHEMA)
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert run["results"] == []
        # Every registered rule ships metadata even on a clean run.
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(RULE_REGISTRY) <= ids

    def test_findings_sarif_validates(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            paths = ["pkg"]

            [tool.reprolint.rules.float-equality]
            paths = []
            """))
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f(x):\n    return x == 1.5\n")

        code = cli.main(
            ["lint", "--format", "sarif", "--root", str(tmp_path)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        jsonschema.validate(payload, SARIF_SUBSET_SCHEMA)
        run = payload["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "float-equality"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "pkg/mod.py"
        assert loc["region"]["startLine"] == 2
        # ruleIndex points back into the driver rules array.
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "float-equality"
        assert "reprolint/v1" in result["partialFingerprints"]


class TestExplain:
    def test_explain_each_v2_rule(self, capsys):
        for rule_id in ("numeric-safety", "lock-order", "stats-contract"):
            assert cli.main(["lint", "--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert out.startswith(rule_id)
            # More than the one-line title: the full docstring body.
            assert len(out.strip().splitlines()) > 2

    def test_explain_every_registered_rule(self, capsys):
        for rule_id in RULE_REGISTRY:
            assert cli.main(["lint", "--explain", rule_id]) == 0
            assert capsys.readouterr().out.strip()

    def test_explain_unknown_rule(self, capsys):
        assert cli.main(["lint", "--explain", "no-such-rule"]) == 2
        assert "no-such-rule" in capsys.readouterr().err
