"""Tests for the fingerprint-keyed recommendation store."""

from repro.ioutils import read_envelope, write_envelope
from repro.serve.store import ADVISOR_SCHEMA, AdvisorStore, profile_token


def _payload():
    return {"best": "bcsr 2x2", "predicted_s": 1.5e-3}


class TestProfileToken:
    def test_stable(self, profile_dp):
        assert profile_token(profile_dp) == profile_token(profile_dp)

    def test_distinguishes_precisions(self, profile_dp, profile_sp):
        assert profile_token(profile_dp) != profile_token(profile_sp)


class TestStore:
    def test_round_trip(self, tmp_path):
        store = AdvisorStore(tmp_path)
        key = AdvisorStore.key("fp", "opts", "tok")
        store.save(key, _payload(), fingerprint="fp", token="tok")
        assert store.load(key, token="tok") == _payload()
        assert store.entry_count() == 1

    def test_missing_entry(self, tmp_path):
        store = AdvisorStore(tmp_path)
        assert store.load("no-such-key", token="tok") is None
        assert store.entry_count() == 0

    def test_stale_profile_token_invalidates(self, tmp_path):
        store = AdvisorStore(tmp_path)
        key = AdvisorStore.key("fp", "opts", "old")
        store.save(key, _payload(), fingerprint="fp", token="old")
        assert store.load(key, token="recalibrated") is None
        # The stale entry is discarded, not left to fail forever.
        assert store.entry_count() == 0

    def test_corrupt_entry_discarded(self, tmp_path):
        store = AdvisorStore(tmp_path)
        key = AdvisorStore.key("fp", "opts", "tok")
        store.save(key, _payload(), fingerprint="fp", token="tok")
        store.path(key).write_text("{truncated")
        assert store.load(key, token="tok") is None
        assert not store.path(key).exists()

    def test_schema_bump_invalidates(self, tmp_path):
        store = AdvisorStore(tmp_path)
        key = AdvisorStore.key("fp", "opts", "tok")
        store.save(key, _payload(), fingerprint="fp", token="tok")
        entry = read_envelope(store.path(key))
        entry["schema"] = ADVISOR_SCHEMA + 1
        write_envelope(store.path(key), entry, schema=ADVISOR_SCHEMA + 1)
        assert store.load(key, token="tok") is None

    def test_key_depends_on_all_parts(self):
        base = AdvisorStore.key("fp", "opts", "tok")
        assert AdvisorStore.key("fp2", "opts", "tok") != base
        assert AdvisorStore.key("fp", "opts2", "tok") != base
        assert AdvisorStore.key("fp", "opts", "tok2") != base

    def test_clear(self, tmp_path):
        store = AdvisorStore(tmp_path)
        for i in range(3):
            key = AdvisorStore.key(f"fp{i}", "opts", "tok")
            store.save(key, _payload(), fingerprint=f"fp{i}", token="tok")
        assert store.entry_count() == 3
        store.clear()
        assert store.entry_count() == 0
