"""Tests for the MEM / MEMCOMP / OVERLAP performance models."""

import pytest

from repro.core import MODELS, get_model
from repro.core.models import MemCompModel, MemModel, OverlapModel
from repro.errors import ModelError
from repro.formats import build_format
from repro.matrices.generators import grid2d
from repro.types import Impl


@pytest.fixture(scope="module")
def fem():
    return grid2d(110, 110, 5, dof=3)


class TestMemModel:
    def test_is_exactly_ws_over_bw(self, fem, machine):
        csr = build_format(fem, "csr", with_values=False)
        pred = MemModel().predict(csr, machine, "dp")
        assert pred == pytest.approx(
            csr.working_set("dp") / machine.memory_bandwidth(1)
        )

    def test_impl_blind(self, fem, machine):
        bcsr = build_format(fem, "bcsr", (3, 2), with_values=False)
        m = MemModel()
        assert m.predict(bcsr, machine, "dp", "scalar") == m.predict(
            bcsr, machine, "dp", "simd"
        )
        assert not m.impl_aware

    def test_applies_to_vbl(self, fem, machine):
        vbl = build_format(fem, "vbl", with_values=False)
        assert MemModel().predict(vbl, machine, "dp") > 0

    def test_needs_no_profile(self):
        assert not MemModel().requires_profile


class TestMemCompModel:
    def test_exceeds_mem(self, fem, machine, profile_dp):
        """MEMCOMP adds the full compute term on top of MEM (eq. 2)."""
        bcsr = build_format(fem, "bcsr", (3, 2), with_values=False)
        mem = MemModel().predict(bcsr, machine, "dp")
        memcomp = MemCompModel().predict(
            bcsr, machine, "dp", "scalar", profile_dp
        )
        assert memcomp > mem

    def test_decomposition_sums_parts(self, fem, machine, profile_dp):
        dec = build_format(fem, "bcsr_dec", (3, 2), with_values=False)
        pred = MemCompModel().predict(dec, machine, "dp", "scalar", profile_dp)
        bw = machine.memory_bandwidth(1)
        manual = 0.0
        for part in dec.submatrices():
            ws_i = part.working_set_matrix_only("dp") + part.vector_bytes("dp")
            manual += ws_i / bw + part.n_blocks * profile_dp.block_time(
                part, Impl.SCALAR
            )
        assert pred == pytest.approx(manual)

    def test_requires_profile(self, fem, machine):
        bcsr = build_format(fem, "bcsr", (2, 2), with_values=False)
        with pytest.raises(ModelError):
            MemCompModel().predict(bcsr, machine, "dp", "scalar", None)

    def test_rejects_wrong_precision_profile(self, fem, machine, profile_sp):
        bcsr = build_format(fem, "bcsr", (2, 2), with_values=False)
        with pytest.raises(ModelError):
            MemCompModel().predict(bcsr, machine, "dp", "scalar", profile_sp)

    def test_rejects_vbl(self, fem, machine, profile_dp):
        vbl = build_format(fem, "vbl", with_values=False)
        with pytest.raises(ModelError):
            MemCompModel().predict(vbl, machine, "dp", "scalar", profile_dp)


class TestOverlapModel:
    def test_between_mem_and_memcomp(self, fem, machine, profile_dp):
        """With nof in [0, 1], OVERLAP sits between MEM and MEMCOMP —
        the ordering Fig. 3 exhibits."""
        for kind, block in [("csr", None), ("bcsr", (3, 2)), ("bcsd", 4)]:
            fmt = build_format(fem, kind, block, with_values=False)
            mem = MemModel().predict(fmt, machine, "dp")
            memcomp = MemCompModel().predict(
                fmt, machine, "dp", "scalar", profile_dp
            )
            overlap = OverlapModel().predict(
                fmt, machine, "dp", "scalar", profile_dp
            )
            assert mem <= overlap <= memcomp * 1.0001

    def test_simd_changes_prediction(self, fem, machine, profile_dp):
        bcsr = build_format(fem, "bcsr", (3, 2), with_values=False)
        m = OverlapModel()
        scalar = m.predict(bcsr, machine, "dp", "scalar", profile_dp)
        simd = m.predict(bcsr, machine, "dp", "simd", profile_dp)
        assert scalar != simd

    def test_csr_part_of_dec_stays_scalar(self, fem, machine, profile_dp):
        """SIMD predictions for a decomposition use the scalar CSR t_b."""
        dec = build_format(fem, "bcsr_dec", (3, 2), with_values=False)
        pred = OverlapModel().predict(dec, machine, "dp", "simd", profile_dp)
        assert pred > 0  # would raise if it looked up a SIMD CSR profile


class TestRegistry:
    def test_get_model(self):
        assert isinstance(get_model("mem"), MemModel)
        assert isinstance(get_model("MEMCOMP"), MemCompModel)
        assert isinstance(get_model("overlap"), OverlapModel)

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            get_model("oracle")

    def test_registry_names(self):
        assert set(MODELS) == {"mem", "memcomp", "overlap"}


class TestPredictionQuality:
    """Model-vs-simulator accuracy on a blockable mesh (Fig. 3 in miniature)."""

    def test_overlap_most_accurate_on_fem(self, fem, machine, profile_dp):
        from repro.machine import simulate

        errors = {}
        for name in ("mem", "memcomp", "overlap"):
            model = get_model(name)
            errs = []
            for kind, block in [
                ("csr", None), ("bcsr", (3, 2)), ("bcsr", (1, 4)),
                ("bcsd", 3), ("bcsr_dec", (3, 2)),
            ]:
                fmt = build_format(fem, kind, block, with_values=False)
                pred = model.predict(fmt, machine, "dp", "scalar", profile_dp)
                real = simulate(fmt, machine, "dp", "scalar").t_total
                errs.append(abs(pred - real) / real)
            errors[name] = sum(errs) / len(errs)
        assert errors["overlap"] < errors["memcomp"]
        assert errors["overlap"] < 0.15  # the paper reports ~10%
