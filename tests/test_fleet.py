"""Tests for repro.fleet: replay determinism, sharded routing, stats
fan-in, and the live multi-process fleet (supervisor + balancer)."""

from __future__ import annotations

import json
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.fleet import (
    BalancerRequestHandler,
    FleetBalancer,
    FleetConfig,
    FleetSupervisor,
    build_plan,
    merge_stats,
    percentile,
    routing_fingerprint,
    run_load,
    shard_for,
)
from repro.fleet.replay import CHAOS_FAULT_PLAN, DEFAULT_MATRICES
from repro.types import Precision


@pytest.fixture(scope="session")
def profile_root(tmp_path_factory, machine, profile_dp):
    """A profile store pre-seeded on disk with the session dp profile.

    Fleet workers point ``--profile-dir`` here and warm-start from disk
    instead of each paying the multi-second calibration.
    """
    from repro.core.profiling import (
        PROFILE_SCHEMA,
        ProfileStore,
        profile_to_payload,
    )
    from repro.ioutils import atomic_write_json

    root = tmp_path_factory.mktemp("fleet-profiles")
    store = ProfileStore(root)
    atomic_write_json(
        store.path(machine, Precision.DP, False),
        {
            "schema": PROFILE_SCHEMA,
            "machine": machine.name,
            "profile": profile_to_payload(profile_dp),
        },
    )
    return root


class TestReplayDeterminism:
    @pytest.mark.parametrize("mix", ["steady", "skew", "flood", "chaos"])
    def test_same_seed_byte_identical(self, mix):
        a = build_plan(mix, 42, 80)
        b = build_plan(mix, 42, 80)
        assert a.canonical_json() == b.canonical_json()
        assert a.sequence_sha() == b.sequence_sha()
        assert [r.suite for r in a.requests] == [
            r.suite for r in b.requests
        ]

    def test_different_seed_different_sequence(self):
        assert (
            build_plan("steady", 1, 80).sequence_sha()
            != build_plan("steady", 2, 80).sequence_sha()
        )

    def test_different_mix_different_sequence(self):
        assert (
            build_plan("steady", 7, 80).sequence_sha()
            != build_plan("skew", 7, 80).sequence_sha()
        )

    def test_plan_shape(self):
        plan = build_plan("steady", 3, 17)
        assert len(plan.requests) == 17
        assert plan.matrices == DEFAULT_MATRICES
        assert all(r.suite in DEFAULT_MATRICES for r in plan.requests)
        assert plan.fault_plan is None and plan.kill_worker_at is None

    def test_skew_concentrates_traffic(self):
        plan = build_plan("skew", 5, 300)
        counts = {}
        for r in plan.requests:
            counts[r.suite] = counts.get(r.suite, 0) + 1
        top = max(counts.values())
        assert top > 300 / len(plan.matrices)  # hotter than uniform

    def test_flood_cycles_all_matrices(self):
        plan = build_plan("flood", 5, 9, ("dense", "pwtk", "stomach"))
        # Every consecutive window of 3 touches all 3 matrices.
        for start in (0, 3, 6):
            window = {r.suite for r in plan.requests[start:start + 3]}
            assert window == {"dense", "pwtk", "stomach"}

    def test_chaos_carries_fault_plan_and_kill(self):
        plan = build_plan("chaos", 11, 20)
        assert plan.fault_plan == CHAOS_FAULT_PLAN
        assert plan.kill_worker_at == 0.5
        # The canonical form covers the chaos script too.
        assert "kill_worker_at" in plan.canonical_json()

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            build_plan("bursty", 1, 10)

    def test_unknown_matrix_rejected_up_front(self):
        with pytest.raises(KeyError):
            build_plan("steady", 1, 10, ("no-such-matrix",))


class TestRouting:
    def test_fingerprint_is_stable_and_normalised(self):
        fp = routing_fingerprint({"suite": "pwtk"})
        assert fp == routing_fingerprint({"suite": " PWTK "})
        assert fp == routing_fingerprint({"suite": "pwtk", "top": 3})
        assert fp != routing_fingerprint({"suite": "dense"})

    def test_matrix_market_and_suite_hash_apart(self):
        assert routing_fingerprint(
            {"matrix_market": "pwtk"}
        ) != routing_fingerprint({"suite": "pwtk"})

    def test_unroutable_bodies(self):
        assert routing_fingerprint({}) is None
        assert routing_fingerprint({"matrix_market": 42}) is None

    def test_shard_partition_is_disjoint_and_total(self):
        # Every request maps to exactly one shard, and the mapping only
        # depends on the fingerprint: this is the disjoint-cache property.
        for n in (1, 2, 3, 4, 7):
            for name in DEFAULT_MATRICES:
                fp = routing_fingerprint({"suite": name})
                shards = {shard_for(fp, n) for _ in range(5)}
                assert len(shards) == 1
                assert 0 <= shards.pop() < n


class TestMergeStats:
    def test_counters_sum_and_latency_weights(self):
        merged = merge_stats([
            {"requests": 10, "cache_hits": 4, "cache_misses": 6,
             "errors": 1, "timeouts": 0, "batches": 0, "degraded": 0,
             "cache_entries": 6, "mean_latency_s": 0.1, "machine": "m",
             "resilience": {"events": {"request_shed": 1},
                            "breakers": {}}},
            {"requests": 30, "cache_hits": 20, "cache_misses": 10,
             "errors": 0, "timeouts": 2, "batches": 0, "degraded": 1,
             "cache_entries": 10, "mean_latency_s": 0.3, "machine": "m",
             "resilience": {"events": {"request_shed": 2},
                            "breakers": {}}},
        ])
        assert merged["requests"] == 40
        assert merged["cache_hits"] == 24
        assert merged["timeouts"] == 2
        assert merged["cache_entries"] == 16
        assert merged["mean_latency_s"] == pytest.approx(0.25)
        assert merged["machine"] == "m"
        assert merged["resilience"]["events"]["request_shed"] == 3

    def test_breakers_take_worst_state(self):
        closed = {"state": "closed", "consecutive_failures": 0}
        open_ = {"state": "open", "consecutive_failures": 5}
        half = {"state": "half_open", "consecutive_failures": 2}
        merged = merge_stats([
            {"requests": 1, "resilience": {"events": {},
                                           "breakers": {"dp": open_}}},
            {"requests": 1, "resilience": {"events": {},
                                           "breakers": {"dp": closed,
                                                        "sp": half}}},
        ])
        assert merged["resilience"]["breakers"]["dp"]["state"] == "open"
        assert (
            merged["resilience"]["breakers"]["dp"]["consecutive_failures"]
            == 5
        )
        assert merged["resilience"]["breakers"]["sp"]["state"] == "half_open"

    def test_empty_fleet(self):
        merged = merge_stats([])
        assert merged["requests"] == 0
        assert merged["mean_latency_s"] == 0.0


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 11)]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 95.0) == 10.0
        assert percentile(values, 100.0) == 10.0
        assert percentile([], 50.0) == 0.0
        assert percentile([3.0], 99.0) == 3.0


class _StubAdviseHandler(BaseHTTPRequestHandler):
    """Answers every /advise with a canned 200 (no model evaluation)."""

    def do_POST(self):  # noqa: N802 - stdlib naming
        length = int(self.headers.get("Content-Length", 0))
        body = json.loads(self.rfile.read(length))
        payload = json.dumps({"echo": body.get("suite")}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args):
        pass


@pytest.fixture()
def stub_server():
    srv = ThreadingHTTPServer(("127.0.0.1", 0), _StubAdviseHandler)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{srv.server_address[1]}"
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


class TestLoadgenTables:
    def test_deterministic_fields_stable_across_runs(self, stub_server):
        plan = build_plan("skew", 9, 25)
        tables = [
            run_load(stub_server, plan, clients=3) for _ in range(2)
        ]
        for table in tables:
            table.pop("timing")  # wall-clock: excluded from the contract
        assert tables[0] == tables[1]
        assert tables[0]["statuses"] == {"200": 25}
        assert tables[0]["violations"] == []
        assert tables[0]["sequence_sha256"] == plan.sequence_sha()

    def test_status_budget_violations_recorded(self, stub_server):
        plan = build_plan("steady", 9, 5)
        table = run_load(
            stub_server, plan, clients=2, allowed_statuses=(418,)
        )
        assert len(table["violations"]) == 5

    def test_midpoint_hook_fires_exactly_once(self, stub_server):
        plan = build_plan("steady", 9, 20)
        fired = []
        run_load(
            stub_server, plan, clients=4,
            on_midpoint=lambda: fired.append(1),
        )
        assert len(fired) == 1


@pytest.mark.slow
class TestLiveFleet:
    """End-to-end: real worker subprocesses behind the real balancer."""

    @pytest.fixture()
    def fleet(self, tmp_path, profile_root):
        config = FleetConfig(
            workers=2, cache_dir=tmp_path / "cache"
        )
        supervisor = FleetSupervisor(config)
        # Workers share the pre-seeded session profile store.
        supervisor._new_worker = lambda index: self_worker(
            index, config, profile_root
        )
        supervisor.start()
        balancer = FleetBalancer(
            ("127.0.0.1", 0), BalancerRequestHandler, supervisor
        )
        loop = threading.Thread(target=balancer.serve_forever, daemon=True)
        loop.start()
        base_url = f"http://127.0.0.1:{balancer.server_address[1]}"
        yield supervisor, base_url
        balancer.shutdown()
        balancer.server_close()
        loop.join(timeout=5)
        supervisor.shutdown()

    def test_steady_mix_all_200_and_fanin(self, fleet):
        supervisor, base_url = fleet
        plan = build_plan("steady", 21, 10, ("dense", "pwtk"))
        table = run_load(base_url, plan, clients=2)
        assert table["statuses"] == {"200": 10}
        assert table["violations"] == []

        with urllib.request.urlopen(f"{base_url}/stats", timeout=30) as r:
            stats = json.loads(r.read())
        assert stats["requests"] == 10
        assert stats["fleet"]["size"] == 2
        assert stats["fleet"]["reachable"] == 2
        ids = {w["worker_id"] for w in stats["workers"]}
        assert ids == {0, 1}
        # Sharding keeps the cache partitions disjoint: fleet-wide hits
        # and misses still account for every request.
        assert stats["cache_hits"] + stats["cache_misses"] == 10

        with urllib.request.urlopen(f"{base_url}/readyz", timeout=30) as r:
            assert r.status == 200

    def test_kill_worker_mid_mix_zero_failures(self, fleet):
        supervisor, base_url = fleet
        plan = build_plan("steady", 33, 16, ("dense", "pwtk"))
        events = []

        class _Recorder:
            def handle(self, event):
                events.append(event["event"])

        supervisor.bus.subscribe(_Recorder())
        table = run_load(
            base_url, plan, clients=2,
            on_midpoint=lambda: supervisor.kill_worker(0),
        )
        # The shard failover absorbs the SIGKILL: every request still 200.
        assert table["violations"] == []
        assert table["statuses"] == {"200": 16}
        deadline = threading.Event()
        for _ in range(100):  # wait for the supervised restart
            if supervisor.all_ready():
                break
            deadline.wait(0.2)
        assert "worker_restart" in events


def self_worker(index, config, profile_root):
    """A fleet worker whose profile store is the pre-seeded session one."""
    from repro.fleet import WorkerProcess

    return WorkerProcess(
        index,
        cache_dir=config.cache_dir,
        profile_dir=profile_root,
        host=config.host,
    )
