"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiling import ProfileCache, profile_machine
from repro.formats import COOMatrix
from repro.machine import CORE2_XEON
from repro.types import Precision


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20090701)


@pytest.fixture(scope="session")
def machine():
    """The paper's testbed preset."""
    return CORE2_XEON


@pytest.fixture(scope="session")
def profile_dp(machine):
    """Calibrated dp block profile (session-scoped: profiling is slow)."""
    return profile_machine(machine, "dp")


@pytest.fixture(scope="session")
def profile_sp(machine):
    return profile_machine(machine, "sp")


@pytest.fixture(scope="session")
def shared_profile_cache(machine, profile_dp):
    """A ProfileCache pre-seeded with the session profile, so services in
    tests never re-calibrate (~2.3s each)."""
    cache = ProfileCache()
    cache._cache[(id(machine), Precision.DP, False)] = profile_dp
    return cache


def make_random_coo(
    nrows: int, ncols: int, nnz: int, seed: int, with_values: bool = True
) -> COOMatrix:
    """Small random test matrix (duplicates merged, so nnz is approximate)."""
    r = np.random.default_rng(seed)
    rows = r.integers(0, nrows, nnz)
    cols = r.integers(0, ncols, nnz)
    values = r.standard_normal(nnz) if with_values else None
    return COOMatrix(nrows, ncols, rows, cols, values)


@pytest.fixture()
def small_coo():
    """A 60x45 random matrix with values."""
    return make_random_coo(60, 45, 420, seed=7)


@pytest.fixture()
def small_x(small_coo, rng):
    return np.random.default_rng(11).standard_normal(small_coo.ncols)
