"""Equivalence suite for the batched whole-matrix array program.

The contract of :mod:`repro.machine.batch` is bit-identity, not closeness:
every structure the fused planning pass builds must match the per-call
converters array-for-array, and every cell :class:`MatrixProgram` evaluates
must match the per-cell ``SimPlan.run`` / model-predict path float-for-
float.  All comparisons here are exact (``==`` on dataclasses, dtype-aware
``array_equal`` on arrays).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import (
    MODEL_NAMES,
    MatrixSweep,
    SweepConfig,
    SweepRecord,
    SweepResult,
    diff_sweep_results,
)
from repro.core.candidates import Candidate, candidate_space, unique_structures
from repro.core.profiling import ProfileCache
from repro.core.selection import AutoTuner, build_candidate, evaluate_candidates
from repro.formats.coo import COOMatrix
from repro.machine.batch import MatrixProgram, plan_structures
from repro.machine.plan import MAX_PLANS_PER_FORMAT, get_plan
from repro.types import Impl, Precision

from .conftest import make_random_coo

CANDIDATES = candidate_space(max_block_elems=4)
STRUCTURES = unique_structures(CANDIDATES)


@pytest.fixture(scope="module")
def profile_cache_both(machine, profile_dp, profile_sp):
    """A cache pre-seeded with both precisions (no test-time calibration)."""
    cache = ProfileCache()
    cache._cache[(id(machine), Precision.DP, False)] = profile_dp
    cache._cache[(id(machine), Precision.SP, False)] = profile_sp
    return cache


# The structural attributes of each format kind.  Comparison is
# attribute-based rather than ``type``/``vars``-based because the fused
# pass may return lazily-materializing subclasses: *reading* the index
# attributes here forces materialization, which must then match the
# per-call converter's arrays bit-for-bit.
_FORMAT_ATTRS = {
    "csr": ("row_ptr", "col_ind", "values"),
    "vbl": ("row_ptr", "bcol_ind", "blk_size", "block_row_ptr", "values"),
    "bcsr": ("block", "brow_ptr", "bcol_ind", "bval"),
    "bcsd": ("b", "brow_ptr", "bcol_ind", "bval"),
}


def assert_same_format(a, b) -> None:
    """Exact structural equality: same kind, same arrays bit-for-bit."""
    assert a.kind == b.kind
    assert a.shape == b.shape
    assert a.nnz == b.nnz
    assert a.nnz_stored == b.nnz_stored
    assert a.n_blocks == b.n_blocks
    if a.kind in ("bcsr_dec", "bcsd_dec", "decomposed"):
        assert a.display_name == b.display_name
        assert len(a.parts) == len(b.parts)
        for pa, pb in zip(a.parts, b.parts):
            assert_same_format(pa, pb)
        return
    for key in _FORMAT_ATTRS[a.kind]:
        va, vb = getattr(a, key), getattr(b, key)
        if isinstance(va, np.ndarray):
            assert isinstance(vb, np.ndarray), key
            assert va.dtype == vb.dtype, key
            assert np.array_equal(va, vb), key
        else:
            assert va == vb, (key, va, vb)


@st.composite
def random_coos(draw, max_dim=120, max_nnz=500):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, nrows * ncols)))
    seed = draw(st.integers(0, 2**31 - 1))
    return make_random_coo(nrows, ncols, nnz, seed=seed, with_values=False)


class TestPlanStructures:
    @given(coo=random_coos())
    @settings(max_examples=25, deadline=None)
    def test_matches_per_structure_builders(self, coo):
        fused = plan_structures(coo, STRUCTURES)
        assert set(fused) == set(STRUCTURES)
        for kind, block in STRUCTURES:
            reference = build_candidate(
                coo, Candidate(kind, block, Impl.SCALAR)
            )
            assert_same_format(fused[(kind, block)], reference)

    def test_empty_matrix_falls_back(self):
        coo = COOMatrix(8, 8, np.array([], dtype=np.int64),
                        np.array([], dtype=np.int64), None)
        fused = plan_structures(coo, STRUCTURES)
        for kind, block in STRUCTURES:
            assert_same_format(
                fused[(kind, block)],
                build_candidate(coo, Candidate(kind, block, Impl.SCALAR)),
            )

    def test_charges_stats_and_convert_phases(self, small_coo):
        import time

        timings: dict = {}
        plan_structures(
            small_coo, STRUCTURES, timings=timings, clock=time.perf_counter
        )
        assert timings["stats"] > 0.0
        assert timings["convert"] > 0.0


class TestMatrixProgramEquivalence:
    @given(
        coo=random_coos(),
        precision=st.sampled_from(["dp", "sp"]),
        nthreads=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_cells_match_per_cell_path(
        self, coo, precision, nthreads, machine, profile_cache_both
    ):
        """Every (candidate, precision, threads) cell — simulated breakdown
        and model predictions — is exactly what the sequential path
        produces."""
        candidates = (
            CANDIDATES
            if nthreads == 1
            else tuple(c for c in CANDIDATES if c.kind != "vbl")
        )
        models = MODEL_NAMES if nthreads == 1 else ()
        program = MatrixProgram(
            coo, machine, CANDIDATES, profile_cache=profile_cache_both
        )
        batched = program.evaluate(
            precision, nthreads, candidates, models=models
        )
        reference = evaluate_candidates(
            coo,
            machine,
            precision,
            candidates=candidates,
            models=models,
            profile_cache=profile_cache_both,
            nthreads=nthreads,
        )
        assert len(batched) == len(reference)
        for got, want in zip(batched, reference):
            assert got.candidate == want.candidate
            assert got.ws_bytes == want.ws_bytes
            assert got.padding_ratio == want.padding_ratio
            assert got.n_blocks == want.n_blocks
            # SimResult is a frozen dataclass: == is exact float equality.
            assert got.sim == want.sim
            assert got.predictions == want.predictions

    def test_autotuner_batched_select_agrees(self, small_coo, machine):
        # The "mem" model needs no calibrated profile, so this stays fast.
        tuner = AutoTuner(machine)
        plain = tuner.select(small_coo, model="mem", candidates=CANDIDATES)
        batched = tuner.select(
            small_coo, model="mem", candidates=CANDIDATES, batch=True
        )
        assert batched.candidate == plain.candidate
        assert batched.predictions == plain.predictions


class TestPlanMemoCap:
    def test_lru_eviction_and_refresh(self, machine, small_coo):
        fmt = build_candidate(small_coo, Candidate("csr", None, Impl.SCALAR))
        # Keep every machine referenced: id() reuse after gc would alias keys.
        machines = [
            machine.with_overrides() for _ in range(MAX_PLANS_PER_FORMAT)
        ]
        plans = [get_plan(fmt, m, "dp") for m in machines]
        assert len(fmt._sim_plans) == MAX_PLANS_PER_FORMAT

        # A hit refreshes recency: the oldest entry survives the next insert.
        assert get_plan(fmt, machines[0], "dp") is plans[0]
        extra = machine.with_overrides()
        get_plan(fmt, extra, "dp")
        assert len(fmt._sim_plans) == MAX_PLANS_PER_FORMAT
        assert (id(machines[0]), Precision.DP) in fmt._sim_plans
        assert (id(machines[1]), Precision.DP) not in fmt._sim_plans
        assert (id(extra), Precision.DP) in fmt._sim_plans


class TestDiffSweepResults:
    def _result(self, t_real=1.0):
        record = SweepRecord(
            kind="csr", block=None, impl="scalar", precision="dp",
            nthreads=1, t_real=t_real, t_mem=0.5, t_comp=0.5,
            t_latency=0.0, ws_bytes=100, padding_ratio=1.0, n_blocks=10,
            predictions={"mem": 0.5},
        )
        matrix = MatrixSweep(
            idx=1, name="dense", domain="d", geometry=False, special=False,
            nrows=4, ncols=4, nnz=10, records=[record],
        )
        return SweepResult(
            config=SweepConfig(suite_indices=(1,)),
            matrices=[matrix],
            elapsed_s=0.0,
        )

    def test_identical_sweeps_diff_clean(self):
        assert diff_sweep_results(self._result(), self._result()) is None

    def test_first_divergent_field_is_named(self):
        diff = diff_sweep_results(
            self._result(t_real=1.0), self._result(t_real=1.0 + 1e-15)
        )
        assert diff is not None
        assert "t_real" in diff
        assert "record 0" in diff

    def test_missing_matrix_reported(self):
        a, b = self._result(), self._result()
        b.matrices = []
        assert "matrix count" in diff_sweep_results(a, b)
