"""Tests for the advisor's structural-feature extractor."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.serve.features import (
    DIAG_PROBES,
    ROW_PROBES,
    SAMPLE_TARGET_NNZ,
    MatrixFeatures,
    extract_features,
    matrix_fingerprint,
)

from .conftest import make_random_coo


class TestFingerprint:
    def test_deterministic(self):
        a = make_random_coo(40, 40, 200, seed=1, with_values=False)
        assert matrix_fingerprint(a) == matrix_fingerprint(a)

    def test_value_blind(self):
        pattern = make_random_coo(40, 40, 200, seed=1, with_values=False)
        valued = pattern.with_values(np.ones(pattern.nnz))
        assert matrix_fingerprint(pattern) == matrix_fingerprint(valued)

    def test_pattern_sensitive(self):
        a = make_random_coo(40, 40, 200, seed=1, with_values=False)
        b = make_random_coo(40, 40, 200, seed=2, with_values=False)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_shape_sensitive(self):
        diag = COOMatrix.eye(8)
        wide = COOMatrix(8, 16, diag.rows, diag.cols)
        assert matrix_fingerprint(diag) != matrix_fingerprint(wide)


class TestFills:
    def test_dense_pattern_fills_are_one(self):
        coo = COOMatrix.from_dense(np.ones((24, 24)))
        f = extract_features(coo)
        for r in ROW_PROBES:
            assert f.row_fill[r] == pytest.approx(1.0)
            assert f.col_fill[r] == pytest.approx(1.0)
        assert f.est_rect_fill(8, 8) == pytest.approx(1.0)
        assert f.est_rect_full_frac(2, 2) == pytest.approx(1.0)
        assert f.density == pytest.approx(1.0)
        # 24x24 with a 16-wide band: most (not all) entries are in-band.
        assert f.bandedness > 0.9

    def test_sparse_random_fill_is_low(self):
        coo = make_random_coo(600, 600, 1800, seed=5, with_values=False)
        f = extract_features(coo)
        # ~0.5% density: 2x2 blocks are almost all singletons (fill ~ 1/4).
        assert f.est_rect_fill(2, 2) < 0.5
        assert f.est_rect_full_frac(3, 3) < 0.05

    def test_estimate_clipped_by_marginals(self):
        coo = make_random_coo(300, 300, 3000, seed=6, with_values=False)
        f = extract_features(coo)
        for r, c in ((2, 2), (4, 4), (5, 7), (8, 8)):
            est = f.est_rect_fill(r, c)
            assert 0.0 < est <= 1.0
            assert est <= f._interp(f.row_fill, r) + 1e-12
            assert est <= f._interp(f.col_fill, c) + 1e-12

    def test_interpolation_between_probes(self):
        coo = make_random_coo(300, 300, 3000, seed=7, with_values=False)
        f = extract_features(coo)
        lo, hi = f.row_fill[4], f.row_fill[6]
        mid = f._interp(f.row_fill, 5)
        assert min(lo, hi) - 1e-12 <= mid <= max(lo, hi) + 1e-12
        assert f._interp(f.row_fill, 1) == 1.0

    def test_diagonal_matrix_diag_fill(self):
        f = extract_features(COOMatrix.eye(240))
        # BCSD blocks are segments along a diagonal: a pure diagonal fills
        # every segment completely, at every probed size.
        for b in DIAG_PROBES:
            assert f.diag_fill[b] == pytest.approx(1.0)
            assert f.diag_full_frac[b] == pytest.approx(1.0)
        assert f.bandwidth == 0
        assert f.bandedness == pytest.approx(1.0)


class TestSampling:
    def _banded(self, n: int) -> COOMatrix:
        rows = np.repeat(np.arange(n), 3)
        cols = np.clip(rows + np.tile([-1, 0, 1], n), 0, n - 1)
        return COOMatrix(n, n, rows, cols)

    def test_small_matrix_not_sampled(self):
        f = extract_features(self._banded(1000))
        assert not f.sampled
        assert f.sample_nnz == f.nnz

    def test_large_matrix_sampled(self):
        n = SAMPLE_TARGET_NNZ  # 3 nnz/row -> nnz = 3n > 2 * target
        f = extract_features(self._banded(n))
        assert f.sampled
        assert f.sample_nnz < f.nnz
        # Homogeneous structure: sampled fills match the exact ones.
        exact = extract_features(self._banded(1000))
        for r in ROW_PROBES:
            assert f.row_fill[r] == pytest.approx(exact.row_fill[r], abs=0.02)

    def test_full_feature_passes_use_whole_matrix(self):
        n = SAMPLE_TARGET_NNZ
        f = extract_features(self._banded(n))
        # nnz / bandwidth / density come from the full pattern, not the
        # sample.
        assert f.nnz == 3 * n - 2
        assert f.bandwidth == 1


class TestPayload:
    def test_round_trip(self):
        coo = make_random_coo(200, 150, 900, seed=9, with_values=False)
        f = extract_features(coo)
        back = MatrixFeatures.from_payload(f.to_payload())
        assert back == f

    def test_payload_is_json_safe(self):
        import json

        coo = make_random_coo(50, 50, 120, seed=10, with_values=False)
        payload = extract_features(coo).to_payload()
        assert json.loads(json.dumps(payload)) == payload
