"""Per-rule fixture tests for the repro.analysis invariant linter.

Each rule gets (at least) one minimal bad snippet it must fire on and a
good twin it must stay silent on, plus coverage of the shared machinery:
inline suppressions, the fingerprinted baseline, config loading, and the
file walker.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_REGISTRY,
    AtomicWriteRule,
    DeterminismRule,
    EnvelopeIoRule,
    EventSchemaRule,
    FaultSiteRule,
    FloatEqualityRule,
    LintConfig,
    LockDisciplineRule,
    LockOrderRule,
    apply_baseline,
    build_rules,
    find_project_root,
    iter_source_files,
    lint_file,
    load_baseline,
    load_config,
    run_lint,
    save_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, rules, rel="snippet.py", **kwargs):
    path = tmp_path / rel
    path.write_text(textwrap.dedent(source))
    return lint_file(path, rel, rules, **kwargs)


def rule_ids(findings):
    return [f.rule for f in findings]


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #


class TestDeterminismRule:
    def rule(self, **settings):
        settings.setdefault("model-paths", ["snippet.py"])
        settings.setdefault("model-exclude", [])
        return DeterminismRule(settings)

    def test_wall_clock_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import time

            def cost():
                return time.perf_counter()
            """, [self.rule()])
        assert rule_ids(findings) == ["determinism"]
        assert "time.perf_counter" in findings[0].message

    def test_explicit_timestamp_is_fine(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def cost(elapsed_s):
                return elapsed_s * 2.0
            """, [self.rule()])
        assert findings == []

    def test_model_exclude_whitelists_calibration(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import time

            def calibrate():
                return time.perf_counter()
            """, [self.rule(**{"model-exclude": ["snippet.py"]})])
        assert findings == []

    def test_unseeded_rng_fires_seeded_does_not(self, tmp_path):
        bad, _ = lint_source(tmp_path, """\
            import numpy as np

            rng = np.random.default_rng()
            """, [self.rule()])
        good, _ = lint_source(tmp_path, """\
            import numpy as np

            rng = np.random.default_rng(1234)
            """, [self.rule()])
        assert rule_ids(bad) == ["determinism"]
        assert "unseeded" in bad[0].message
        assert good == []

    def test_global_state_rng_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import random

            def pick(xs):
                return random.choice(xs)
            """, [self.rule()])
        assert rule_ids(findings) == ["determinism"]
        assert "random.choice" in findings[0].message

    def test_unsorted_glob_fires_everywhere(self, tmp_path):
        # Even outside the model paths: readdir order must never leak.
        findings, _ = lint_source(tmp_path, """\
            def shards(root):
                return [p.name for p in root.glob("*.json")]
            """, [self.rule(**{"model-paths": []})])
        assert rule_ids(findings) == ["determinism"]
        assert "sorted" in findings[0].message

    def test_sorted_glob_is_fine(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import os

            def shards(root):
                direct = [p.name for p in sorted(root.glob("*.json"))]
                derived = sorted(int(p.stem) for p in root.glob("*.json"))
                names = sorted(os.listdir(root))
                return direct, derived, names
            """, [self.rule(**{"model-paths": []})])
        assert findings == []

    def test_unsorted_listdir_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import os

            def entries(root):
                return list(os.listdir(root))
            """, [self.rule(**{"model-paths": []})])
        assert rule_ids(findings) == ["determinism"]


# --------------------------------------------------------------------------- #
# atomic-write
# --------------------------------------------------------------------------- #


class TestAtomicWriteRule:
    def rule(self):
        return AtomicWriteRule({"paths": []})

    def test_raw_open_write_and_json_dump_fire(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
            """, [self.rule()])
        assert rule_ids(findings) == ["atomic-write", "atomic-write"]

    def test_write_text_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def save(path, payload):
                path.write_text(payload)
            """, [self.rule()])
        assert rule_ids(findings) == ["atomic-write"]

    def test_atomic_write_and_reads_are_fine(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import json

            from repro.ioutils import atomic_write_json

            def save(path, payload):
                atomic_write_json(path, payload)

            def load(path):
                with open(path) as fh:
                    return json.load(fh)
            """, [self.rule()])
        assert findings == []

    def test_scoping_skips_non_owner_modules(self, tmp_path):
        # Same bad source, but the rule is scoped to cache owners only.
        rule = AtomicWriteRule({"paths": ["src/repro/engine/shards.py"]})
        findings, _ = lint_source(tmp_path, """\
            def save(path, payload):
                path.write_text(payload)
            """, [rule])
        assert findings == []


# --------------------------------------------------------------------------- #
# envelope-io
# --------------------------------------------------------------------------- #


class TestEnvelopeIoRule:
    def rule(self):
        return EnvelopeIoRule({"paths": []})

    def test_raw_json_loads_and_read_text_fire(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import json

            def load(path):
                return json.loads(path.read_text())
            """, [self.rule()])
        assert rule_ids(findings) == ["envelope-io", "envelope-io"]

    def test_json_load_and_read_bytes_fire(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import json

            def load(path, fh):
                data = path.read_bytes()
                return json.load(fh)
            """, [self.rule()])
        assert rule_ids(findings) == ["envelope-io", "envelope-io"]

    def test_envelope_reads_and_dumps_are_fine(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import json

            from repro.ioutils import read_envelope, write_envelope

            def save(path, payload):
                write_envelope(path, payload, schema=1)
                return json.dumps(payload, sort_keys=True)

            def load(path):
                return read_envelope(path)
            """, [self.rule()])
        assert findings == []

    def test_scoping_skips_non_owner_modules(self, tmp_path):
        rule = EnvelopeIoRule({"paths": ["src/repro/engine/shards.py"]})
        findings, _ = lint_source(tmp_path, """\
            import json

            def load(path):
                return json.loads(path.read_text())
            """, [rule])
        assert findings == []


# --------------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------------- #


class TestLockDisciplineRule:
    def rule(self):
        return LockDisciplineRule({"paths": []})

    BAD = """\
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def reset(self):
                self.count = 0
        """

    GOOD = """\
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def reset(self):
                with self._lock:
                    self.count = 0
        """

    def test_unlocked_mutation_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, self.BAD, [self.rule()])
        assert rule_ids(findings) == ["lock-discipline"]
        assert "self.count" in findings[0].message
        # __init__ writes are not flagged: the object is not shared yet.
        assert all(f.line > 6 for f in findings)

    def test_locked_twin_is_silent(self, tmp_path):
        findings, _ = lint_source(tmp_path, self.GOOD, [self.rule()])
        assert findings == []

    def test_subscript_mutation_tracked(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            import threading

            class Stats:
                def __init__(self):
                    self._stats_lock = threading.Lock()
                    self._counters = {"hits": 0}

                def bump(self, key):
                    with self._stats_lock:
                        self._counters[key] += 1

                def smash(self, key):
                    self._counters[key] = 0
            """, [self.rule()])
        assert rule_ids(findings) == ["lock-discipline"]
        assert "_counters" in findings[0].message

    def test_unlocked_attrs_unconstrained(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """, [self.rule()])
        assert findings == []


# --------------------------------------------------------------------------- #
# event-schema
# --------------------------------------------------------------------------- #

TOY_REGISTRY = {
    "shard_start": frozenset({"shard", "matrix"}),
    "sweep_finish": frozenset({"elapsed_s"}),
}


class TestEventSchemaRule:
    def rule(self, **settings):
        settings.setdefault("paths", [])
        settings.setdefault("reporter-paths", [])
        rule = EventSchemaRule(settings)
        rule.registry = TOY_REGISTRY
        return rule

    def test_typoed_kind_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def go(bus):
                bus.emit("shard_strat", shard=1, matrix="pwtk")
            """, [self.rule()])
        assert rule_ids(findings) == ["event-schema"]
        assert "shard_strat" in findings[0].message

    def test_missing_and_extra_fields_fire(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def go(bus):
                bus.emit("shard_start", shard=1, banana=2)
            """, [self.rule()])
        messages = " ".join(f.message for f in findings)
        assert rule_ids(findings) == ["event-schema", "event-schema"]
        assert "matrix" in messages and "banana" in messages

    def test_conforming_emit_is_silent(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def go(self):
                self.bus.emit("shard_start", shard=1, matrix="pwtk")
            """, [self.rule()])
        assert findings == []

    def test_splat_checks_kind_only(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def go(bus, fields):
                bus.emit("shard_start", **fields)
                bus.emit("not_a_kind", **fields)
            """, [self.rule()])
        assert rule_ids(findings) == ["event-schema"]
        assert "not_a_kind" in findings[0].message

    def test_non_bus_emit_ignored(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def go(signal):
                signal.emit("whatever", x=1)
            """, [self.rule()])
        assert findings == []

    def test_reporter_kind_compare_checked_in_scope(self, tmp_path):
        source = """\
            def handle(event):
                kind = event["event"]
                if kind == "shard_strat":
                    return True
                return kind == "shard_start"
            """
        in_scope, _ = lint_source(
            tmp_path, source,
            [self.rule(**{"reporter-paths": ["snippet.py"]})],
        )
        out_of_scope, _ = lint_source(tmp_path, source, [self.rule()])
        assert rule_ids(in_scope) == ["event-schema"]
        assert "shard_strat" in in_scope[0].message
        assert out_of_scope == []

    def test_real_registry_covers_engine_emits(self):
        # The shipped registry is the one the engine actually emits from.
        from repro.engine.events import EVENT_SCHEMAS

        rule = EventSchemaRule({"paths": []})
        assert rule.registry is EVENT_SCHEMAS
        assert "shard_quarantined" in EVENT_SCHEMAS
        assert "error_type" in EVENT_SCHEMAS["shard_quarantined"]


# --------------------------------------------------------------------------- #
# float-equality
# --------------------------------------------------------------------------- #


class TestFloatEqualityRule:
    def rule(self):
        return FloatEqualityRule({"paths": []})

    def test_nonzero_float_literal_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def full(fill):
                return fill == 1.0
            """, [self.rule()])
        assert rule_ids(findings) == ["float-equality"]

    def test_zero_guard_and_int_compare_are_fine(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def breakdown(beta, n):
                return beta == 0.0 or beta != 0.0 or n == 3
            """, [self.rule()])
        assert findings == []


# --------------------------------------------------------------------------- #
# fault-site
# --------------------------------------------------------------------------- #

TOY_CATALOG = frozenset({"serve.store.save", "engine.pool.task"})


class TestFaultSiteRule:
    def rule(self):
        rule = FaultSiteRule({"paths": []})
        rule.catalog = TOY_CATALOG
        return rule

    def test_unregistered_site_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            from repro.resilience.faults import fault_point

            def save():
                fault_point("serve.store.svae")
            """, [self.rule()])
        assert rule_ids(findings) == ["fault-site"]
        assert "serve.store.svae" in findings[0].message

    def test_registered_site_is_silent(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            from repro import resilience

            def save(text):
                text = resilience.fault_point("serve.store.save", text)
                resilience.faults.fault_point("engine.pool.task")
                return text
            """, [self.rule()])
        assert findings == []

    def test_missing_site_argument_fires(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def save(fault_point):
                fault_point()
            """, [self.rule()])
        assert rule_ids(findings) == ["fault-site"]
        assert "without a site" in findings[0].message

    def test_dynamic_site_is_skipped(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            def save(fault_point, site):
                fault_point(site)
            """, [self.rule()])
        assert findings == []

    def test_default_catalog_is_the_real_one(self):
        from repro.resilience.faults import SITE_CATALOG

        rule = FaultSiteRule({"paths": []})
        assert rule.catalog == frozenset(SITE_CATALOG)
        assert "serve.server.request" in rule.catalog


# --------------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------------- #


class TestSuppressions:
    def rule(self):
        return FloatEqualityRule({"paths": []})

    def test_noqa_with_reason_suppresses(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """\
            def full(fill):
                return fill == 1.0  # repro: noqa[float-equality] exact sentinel by construction
            """, [self.rule()])
        assert findings == []
        assert suppressed == 1

    def test_noqa_without_reason_does_not_suppress(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """\
            def full(fill):
                return fill == 1.0  # repro: noqa[float-equality]
            """, [self.rule()])
        assert suppressed == 0
        assert sorted(rule_ids(findings)) == ["float-equality", "suppression"]

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """\
            def full(fill):
                return fill == 1.0  # repro: noqa[determinism] wrong rule named here
            """, [self.rule()])
        assert suppressed == 0
        assert rule_ids(findings) == ["float-equality"]

    def test_noqa_unknown_rule_id_reported(self, tmp_path):
        findings, _ = lint_source(tmp_path, """\
            x = 1  # repro: noqa[no-such-rule] misspelled
            """, [self.rule()])
        assert rule_ids(findings) == ["suppression"]
        assert "no-such-rule" in findings[0].message

    def test_wildcard_noqa_suppresses_everything(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """\
            def full(fill):
                return fill == 1.0  # repro: noqa[*] fixture file, all rules off
            """, [self.rule()])
        assert findings == []
        assert suppressed == 1

    def test_marker_in_docstring_is_inert(self, tmp_path):
        findings, _ = lint_source(tmp_path, '''\
            """Docs may show `# repro: noqa[rule-id] reason` verbatim."""
            ''', [self.rule()])
        assert findings == []


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #


class TestBaseline:
    def rule(self):
        return FloatEqualityRule({"paths": []})

    SOURCE = """\
        def f(a, b):
            return (a == 1.5) or (b == 2.5)
        """

    def test_roundtrip_and_multiset_matching(self, tmp_path):
        findings, _ = lint_source(tmp_path, self.SOURCE, [self.rule()])
        assert len(findings) == 2
        baseline_path = tmp_path / "baseline.json"

        # Baseline only the first finding: the second stays new.
        save_baseline(baseline_path, findings[:1])
        new, baselined = apply_baseline(
            findings, load_baseline(baseline_path)
        )
        assert baselined == 1
        assert new == findings[1:]

        # Baseline both: clean.
        save_baseline(baseline_path, findings)
        new, baselined = apply_baseline(
            findings, load_baseline(baseline_path)
        )
        assert (new, baselined) == ([], 2)

    def test_fingerprint_survives_line_drift(self, tmp_path):
        findings, _ = lint_source(tmp_path, self.SOURCE, [self.rule()])
        shifted, _ = lint_source(
            tmp_path,
            "# a new comment shifts lines\n\n"
            + textwrap.dedent(self.SOURCE),
            [self.rule()], rel="snippet.py",
        )
        assert [f.fingerprint for f in findings] == [
            f.fingerprint for f in shifted
        ]
        assert [f.line for f in findings] != [f.line for f in shifted]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


# --------------------------------------------------------------------------- #
# config + walker
# --------------------------------------------------------------------------- #


class TestConfigAndWalker:
    def test_load_config_reads_pyproject_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            paths = ["pkg"]
            exclude = ["pkg/skip.py"]
            baseline = "lint.json"

            [tool.reprolint.rules.determinism]
            model-paths = ["pkg/models"]
            """))
        config = load_config(tmp_path)
        assert config.paths == ("pkg",)
        assert config.exclude == ("pkg/skip.py",)
        assert config.baseline_path == tmp_path / "lint.json"
        assert config.rules["determinism"]["model-paths"] == ["pkg/models"]

    def test_load_config_defaults_without_table(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == ("src/repro",)
        assert config.rules == {}

    def test_find_project_root_from_repo(self):
        assert find_project_root(REPO_ROOT / "src" / "repro") == REPO_ROOT

    def test_build_rules_rejects_unknown_id(self):
        config = LintConfig(root=REPO_ROOT)
        with pytest.raises(ValueError, match="no-such-rule"):
            build_rules(config, ("no-such-rule",))

    def test_walker_excludes_and_sorts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        for name in ("b.py", "a.py", "skip.py"):
            (tmp_path / "pkg" / name).write_text("x = 1\n")
        config = LintConfig(
            root=tmp_path, paths=("pkg",), exclude=("pkg/skip.py",)
        )
        assert [rel for _, rel in iter_source_files(config)] == [
            "pkg/a.py", "pkg/b.py"
        ]

    def test_run_lint_counts_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "bad.py").write_text("def f(x):\n    return x == 1.5\n")
        config = LintConfig(root=tmp_path, paths=("pkg",))
        result = run_lint(config, only=("float-equality",))
        # Default float-equality scoping does not cover pkg/, so configure it.
        assert result.files_checked == 2
        config = LintConfig(
            root=tmp_path, paths=("pkg",),
            rules={"float-equality": {"paths": []}},
        )
        result = run_lint(config, only=("float-equality",))
        assert [f.path for f in result.findings] == ["pkg/bad.py"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "broken.py").write_text("def f(:\n")
        config = LintConfig(root=tmp_path, paths=("pkg",))
        result = run_lint(config)
        assert rule_ids(result.findings) == ["parse"]


class TestRuleIntrospection:
    def test_project_rule_detection(self):
        # v2 rules override check_project; file rules do not.
        assert LockOrderRule.is_project_rule()
        assert LockDisciplineRule.is_project_rule()
        assert not DeterminismRule.is_project_rule()
        assert not FloatEqualityRule.is_project_rule()

    def test_explain_format(self):
        text = LockOrderRule.explain()
        first, _, body = text.partition("\n")
        assert first == f"{LockOrderRule.id} — {LockOrderRule.title}"
        assert body.strip()  # full docstring follows the header

    def test_every_rule_has_explain_text(self):
        for cls in RULE_REGISTRY.values():
            text = cls.explain()
            assert text.startswith(f"{cls.id} — ")
            assert len(text.splitlines()) > 1, cls.id
