"""Tests for the 1D-VBL format (variable-length horizontal blocks)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, VBLMatrix
from repro.kernels import spmv_vbl_scalar
from repro.types import VBL_MAX_BLOCK

from .conftest import make_random_coo


class TestBlockDetection:
    def test_consecutive_run_is_one_block(self):
        coo = COOMatrix(1, 10, [0, 0, 0], [3, 4, 5], [1.0, 2.0, 3.0])
        vbl = VBLMatrix.from_coo(coo)
        assert vbl.n_blocks == 1
        assert vbl.blk_size.tolist() == [3]
        assert vbl.bcol_ind.tolist() == [3]

    def test_gap_splits_blocks(self):
        coo = COOMatrix(1, 10, [0, 0, 0], [1, 2, 5], [1.0, 2.0, 3.0])
        vbl = VBLMatrix.from_coo(coo)
        assert vbl.n_blocks == 2
        assert vbl.blk_size.tolist() == [2, 1]

    def test_row_change_splits_blocks(self):
        coo = COOMatrix(2, 4, [0, 1], [3, 0], [1.0, 2.0])
        vbl = VBLMatrix.from_coo(coo)
        assert vbl.n_blocks == 2

    def test_wraparound_is_not_a_run(self):
        """Last column of row i followed by column 0 of row i+1 must split."""
        coo = COOMatrix(2, 4, [0, 1], [3, 0], [1.0, 2.0])
        vbl = VBLMatrix.from_coo(coo)
        assert vbl.blk_size.tolist() == [1, 1]

    def test_long_run_split_at_255(self):
        n = 600
        coo = COOMatrix(1, n, np.zeros(n, dtype=int), np.arange(n),
                        np.ones(n))
        vbl = VBLMatrix.from_coo(coo)
        assert vbl.n_blocks == 3
        assert vbl.blk_size.tolist() == [255, 255, 90]
        assert vbl.blk_size.dtype == np.uint8
        assert int(vbl.blk_size.astype(int).max()) <= VBL_MAX_BLOCK

    def test_no_padding_ever(self, small_coo):
        vbl = VBLMatrix.from_coo(small_coo)
        assert vbl.padding == 0
        assert vbl.nnz_stored == small_coo.nnz

    def test_empty_matrix(self):
        vbl = VBLMatrix.from_coo(COOMatrix(3, 3, [], [], []))
        assert vbl.n_blocks == 0
        np.testing.assert_array_equal(vbl.spmv(np.ones(3)), np.zeros(3))


class TestAccounting:
    def test_working_set_one_byte_sizes(self, small_coo):
        vbl = VBLMatrix.from_coo(small_coo)
        nb = vbl.n_blocks
        e = 8
        expected = (
            e * vbl.nnz            # val
            + 4 * nb               # bcol_ind
            + 1 * nb               # blk_size (one byte each)
            + 4 * (vbl.nrows + 1)  # row_ptr
            + e * (vbl.ncols + vbl.nrows)
        )
        assert vbl.working_set("dp") == expected

    def test_value_offsets(self):
        coo = COOMatrix(1, 10, [0] * 5, [0, 1, 2, 5, 6],
                        [1.0, 2.0, 3.0, 4.0, 5.0])
        vbl = VBLMatrix.from_coo(coo)
        assert vbl.value_offsets().tolist() == [0, 3]

    def test_rows_of_blocks(self, small_coo):
        vbl = VBLMatrix.from_coo(small_coo)
        rows = vbl.rows_of_blocks()
        assert rows.shape[0] == vbl.n_blocks
        assert np.all(np.diff(rows) >= 0)


class TestSpmv:
    def test_matches_dense_reference(self, small_coo, small_x):
        vbl = VBLMatrix.from_coo(small_coo)
        np.testing.assert_allclose(
            vbl.spmv(small_x), small_coo.to_dense() @ small_x
        )

    def test_scalar_kernel_matches(self, small_coo, small_x):
        vbl = VBLMatrix.from_coo(small_coo)
        out = np.zeros(vbl.nrows)
        spmv_vbl_scalar(vbl, small_x, out)
        np.testing.assert_allclose(out, vbl.spmv(small_x))

    def test_dense_matrix_long_blocks(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((8, 300))
        coo = COOMatrix.from_dense(dense)
        vbl = VBLMatrix.from_coo(coo)
        x = rng.standard_normal(300)
        np.testing.assert_allclose(vbl.spmv(x), dense @ x)

    def test_to_dense_round_trip(self, small_coo):
        vbl = VBLMatrix.from_coo(small_coo)
        np.testing.assert_allclose(vbl.to_dense(), small_coo.to_dense())


class TestValidation:
    def test_rejects_oversized_block(self):
        with pytest.raises(FormatError):
            VBLMatrix(
                1, 300,
                row_ptr=np.array([0, 256]),
                bcol_ind=np.array([0]),
                blk_size=np.array([256]),
                block_row_ptr=np.array([0, 1]),
                values=np.ones(256),
            )

    def test_rejects_size_sum_mismatch(self):
        with pytest.raises(FormatError):
            VBLMatrix(
                1, 10,
                row_ptr=np.array([0, 3]),
                bcol_ind=np.array([0]),
                blk_size=np.array([2], dtype=np.uint8),
                block_row_ptr=np.array([0, 1]),
                values=np.ones(3),
            )

    def test_rejects_empty_block(self):
        with pytest.raises(FormatError):
            VBLMatrix(
                1, 10,
                row_ptr=np.array([0, 0]),
                bcol_ind=np.array([0]),
                blk_size=np.array([0], dtype=np.uint8),
                block_row_ptr=np.array([0, 1]),
                values=np.empty(0),
            )
