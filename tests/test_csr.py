"""Tests for the CSR format and its kernels."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, CSRMatrix
from repro.kernels import spmv_csr_scalar

from .conftest import make_random_coo


@pytest.fixture()
def csr(small_coo):
    return CSRMatrix.from_coo(small_coo)


class TestConversion:
    def test_round_trip_dense(self, small_coo, csr):
        np.testing.assert_array_equal(csr.to_dense(), small_coo.to_dense())

    def test_to_coo_round_trip(self, small_coo, csr):
        assert csr.to_coo() == small_coo

    def test_row_ptr_brackets(self, csr):
        assert csr.row_ptr[0] == 0
        assert csr.row_ptr[-1] == csr.nnz
        assert np.all(np.diff(csr.row_ptr) >= 0)

    def test_structure_only(self, small_coo):
        s = CSRMatrix.from_coo(small_coo, with_values=False)
        assert not s.has_values
        assert s.nnz == small_coo.nnz
        with pytest.raises(FormatError):
            s.spmv(np.ones(s.ncols))

    def test_empty_rows_preserved(self):
        coo = COOMatrix(5, 5, [0, 4], [0, 4], [1.0, 2.0])
        csr = CSRMatrix.from_coo(coo)
        assert csr.row_lengths().tolist() == [1, 0, 0, 0, 1]


class TestValidation:
    def test_rejects_bad_row_ptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 1], [0], [1.0])

    def test_rejects_non_bracketing_ptr(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 1, 5], [0, 1], [1.0, 2.0])

    def test_rejects_decreasing_ptr(self):
        with pytest.raises(FormatError):
            CSRMatrix(3, 3, [0, 2, 1, 3], [0, 1, 2], [1.0, 2.0, 3.0])

    def test_accepts_trailing_empty_rows(self):
        csr = CSRMatrix(2, 2, [0, 2, 2], [0, 1], [1.0, 2.0])
        assert csr.row_lengths().tolist() == [2, 0]


class TestSpmv:
    def test_matches_dense(self, small_coo, csr, small_x):
        np.testing.assert_allclose(
            csr.spmv(small_x), small_coo.to_dense() @ small_x
        )

    def test_scalar_kernel_matches(self, csr, small_x):
        out = np.zeros(csr.nrows)
        spmv_csr_scalar(csr, small_x, out)
        np.testing.assert_allclose(out, csr.spmv(small_x))

    def test_accumulates_into_out(self, csr, small_x):
        base = np.ones(csr.nrows)
        result = csr.spmv(small_x, out=base.copy())
        np.testing.assert_allclose(result, 1.0 + csr.spmv(small_x))

    def test_empty_matrix(self):
        csr = CSRMatrix.from_coo(COOMatrix(3, 3, [], [], []))
        np.testing.assert_array_equal(csr.spmv(np.ones(3)), np.zeros(3))

    def test_matrix_with_empty_rows(self):
        # reduceat needs the empty-row compaction; exercise it explicitly.
        coo = COOMatrix(6, 4, [0, 3, 3, 5], [1, 0, 2, 3],
                        [2.0, 1.0, 1.0, 4.0])
        csr = CSRMatrix.from_coo(coo)
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        np.testing.assert_allclose(
            csr.spmv(x), [20.0, 0.0, 0.0, 101.0, 0.0, 4000.0]
        )


class TestAccounting:
    def test_working_set_matches_paper_formula(self, csr):
        e = 4  # sp
        expected = (
            e * csr.nnz + 4 * csr.nnz + 4 * (csr.nrows + 1)
            + e * (csr.ncols + csr.nrows)
        )
        assert csr.working_set("sp") == expected

    def test_degenerate_blocking_view(self, csr):
        # The models treat CSR as 1x1 blocks with nb = nnz.
        assert csr.n_blocks == csr.nnz
        assert csr.block_descriptor() == ("csr", None)
        assert csr.nnz_stored == csr.nnz
        assert csr.padding == 0

    def test_x_access_stream_is_col_ind(self, csr):
        stream = csr.x_access_stream()
        assert stream.width == 1
        np.testing.assert_array_equal(stream.starts, csr.col_ind)

    def test_table1_published_figures(self):
        """Our ws formula reproduces the paper's Table I numbers."""
        def ws_sp(nrows, ncols, nnz):
            return 8 * nnz + 4 * (nrows + 1) + 4 * (nrows + ncols)

        dense = ws_sp(2_000, 2_000, 4_000_000) / 2**20
        random = ws_sp(100_000, 100_000, 14_977_726) / 2**20
        assert dense == pytest.approx(30.54, abs=0.02)
        assert random == pytest.approx(115.42, abs=0.05)


class TestStreamProperties:
    def test_line_ids_clip_and_pack(self):
        coo = make_random_coo(20, 200, 100, seed=9, with_values=False)
        csr = CSRMatrix.from_coo(coo, with_values=False)
        lines = csr.x_access_stream().line_ids(line_elems=8)
        assert lines.min() >= 0
        assert lines.max() <= 199 // 8
