"""Tests for the learned format selector (decision tree + features)."""

import numpy as np
import pytest

from repro.core.learned import (
    FEATURE_NAMES,
    DecisionTree,
    LearnedSelector,
    extract_features,
)
from repro.errors import ModelError
from repro.machine import CORE2_XEON
from repro.matrices import generators as g


class TestFeatures:
    def test_vector_shape(self):
        coo = g.grid2d(20, 20, 5)
        feats = extract_features(coo, CORE2_XEON)
        assert feats.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(feats).all()

    def test_fem_features_show_blocks(self):
        fem = g.grid2d(20, 20, 5, dof=3)
        feats = dict(zip(FEATURE_NAMES, extract_features(fem, CORE2_XEON)))
        assert feats["fill_3x3"] == 1.0
        assert feats["mean_run_length"] >= 3.0

    def test_random_features_show_no_blocks(self):
        rnd = g.random_uniform(3000, 3000, 20_000, seed=1)
        feats = dict(zip(FEATURE_NAMES, extract_features(rnd, CORE2_XEON)))
        assert feats["fill_2x2"] < 0.35
        assert feats["mean_run_length"] < 1.2

    def test_x_footprint_ratio_scales_with_ncols(self):
        small = g.random_uniform(2000, 2000, 10_000, seed=2)
        big = g.random_uniform(800_000, 800_000, 10_000, seed=2)
        f_small = extract_features(small, CORE2_XEON)
        f_big = extract_features(big, CORE2_XEON)
        idx = FEATURE_NAMES.index("x_footprint_ratio")
        assert f_big[idx] > f_small[idx] * 100


class TestDecisionTree:
    def test_separable_data(self):
        rng = np.random.default_rng(3)
        X = rng.random((200, 2))
        y = ["a" if x[0] <= 0.5 else "b" for x in X]
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.predict([0.2, 0.9]) == "a"
        assert tree.predict([0.8, 0.1]) == "b"

    def test_two_level_split(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = ["a", "b", "b", "a"]  # XOR needs depth 2
        tree = DecisionTree(max_depth=2, min_samples_leaf=1).fit(X, y)
        assert [tree.predict(x) for x in X] == y

    def test_depth_limit_yields_majority(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = ["a", "a", "a", "b"]
        tree = DecisionTree(max_depth=0).fit(X, y)
        assert all(tree.predict(x) == "a" for x in X)

    def test_single_class(self):
        X = np.zeros((5, 3))
        y = ["only"] * 5
        tree = DecisionTree().fit(X, y)
        assert tree.predict(np.zeros(3)) == "only"

    def test_unfitted_raises(self):
        with pytest.raises(ModelError):
            DecisionTree().predict(np.zeros(2))

    def test_fit_validation(self):
        with pytest.raises(ModelError):
            DecisionTree().fit(np.zeros((3, 2)), ["a", "b"])
        with pytest.raises(ModelError):
            DecisionTree().fit(np.zeros((0, 2)), [])


class TestLearnedSelector:
    @pytest.fixture(scope="class")
    def trained(self):
        """Train on synthetic archetypes of the three structural classes."""
        selector = LearnedSelector(CORE2_XEON, min_samples_leaf=1)
        builders = [
            (lambda s: g.grid2d(30, 30, 5, dof=3, drop_fraction=0.2, seed=s),
             "bcsr"),
            (lambda s: g.random_uniform(4000, 4000, 24_000, seed=s), "csr"),
            (lambda s: g.diagonal_pattern(
                5000, (0, 1, -1, 40, -40), 0.95, seed=s), "bcsd"),
        ]
        feats, labels = [], []
        for build, kind in builders:
            for s in range(4):
                feats.append(extract_features(build(s), CORE2_XEON))
                labels.append(kind)
        return selector.fit(np.array(feats), labels)

    def test_classifies_held_out_matrices(self, trained):
        assert trained.predict_kind(
            g.grid2d(26, 26, 5, dof=3, drop_fraction=0.2, seed=99)
        ) == "bcsr"
        assert trained.predict_kind(
            g.random_uniform(5000, 5000, 30_000, seed=99)
        ) == "csr"
        assert trained.predict_kind(
            g.diagonal_pattern(6000, (0, 1, -1, 50, -50), 0.95, seed=99)
        ) == "bcsd"

    def test_select_returns_candidate_of_predicted_kind(self, trained):
        coo = g.grid2d(30, 30, 5, dof=3, drop_fraction=0.2, seed=55)
        result = trained.select(coo, "dp")
        assert result.candidate.kind == "bcsr"

    def test_unfitted_raises(self):
        sel = LearnedSelector(CORE2_XEON)
        with pytest.raises(ModelError):
            sel.predict_kind(g.grid2d(5, 5, 5))
