"""Tests for the thread-safe AdvisorService (advise, cache, batch API)."""

import pytest

from repro.serve.service import (
    AdviseError,
    AdviseOptions,
    AdvisorService,
    Recommendation,
    resolve_matrix,
)

from .conftest import make_random_coo


@pytest.fixture()
def service(machine, shared_profile_cache, tmp_path):
    return AdvisorService(
        machine, cache_dir=tmp_path, profile_cache=shared_profile_cache
    )


@pytest.fixture(scope="module")
def small():
    return make_random_coo(200, 200, 2000, seed=3, with_values=False)


class TestResolveMatrix:
    def test_coo_passthrough(self, small):
        assert resolve_matrix(small) is small

    def test_suite_name_and_index(self):
        by_name = resolve_matrix("dense")
        by_idx = resolve_matrix(1)
        by_digit = resolve_matrix("1")
        assert by_name.nnz == by_idx.nnz == by_digit.nnz

    def test_mtx_path(self, tmp_path, small):
        from repro.matrices.mmio import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(path, small)
        assert resolve_matrix(path).nnz == small.nnz

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            resolve_matrix("no-such-matrix")


class TestAdvise:
    def test_returns_ranked_recommendation(self, service, small):
        rec = service.advise(small)
        assert isinstance(rec, Recommendation)
        assert rec.nnz == small.nnz
        assert not rec.cache_hit
        preds = [r.predicted_s for r in rec.ranking]
        assert preds == sorted(preds)
        assert rec.best is rec.ranking[0]
        assert rec.n_candidates_evaluated <= rec.n_candidates_total / 3

    def test_no_prune_evaluates_everything(self, service, small):
        rec = service.advise(small, prune=False)
        assert rec.n_candidates_evaluated == rec.n_candidates_total
        assert rec.pruned_structures == {}

    def test_cache_hit_on_second_call(self, service, small):
        first = service.advise(small)
        second = service.advise(small)
        assert not first.cache_hit
        assert second.cache_hit
        assert [r.to_payload() for r in second.ranking] == [
            r.to_payload() for r in first.ranking
        ]
        stats = service.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["cache_entries"] == 1

    def test_options_key_cache_separation(self, service, small):
        service.advise(small, model="overlap")
        rec = service.advise(small, model="mem")
        assert not rec.cache_hit  # different options -> different entry
        assert service.stats()["cache_entries"] == 2

    def test_use_cache_false_recomputes(self, service, small):
        service.advise(small)
        rec = service.advise(small, use_cache=False)
        assert not rec.cache_hit

    def test_memoryless_service(self, machine, shared_profile_cache, small):
        service = AdvisorService(
            machine, cache_dir=None, profile_cache=shared_profile_cache
        )
        rec = service.advise(small)
        assert not rec.cache_hit
        stats = service.stats()
        assert not stats["persistent_cache"]
        assert stats["cache_entries"] == 0

    def test_mem_model_ranking_is_scalar_only(self, service, small):
        rec = service.advise(small, model="mem")
        assert all(r.impl == "scalar" for r in rec.ranking)

    def test_error_counted(self, service):
        with pytest.raises(KeyError):
            service.advise("no-such-matrix")
        assert service.stats()["errors"] == 1


class TestAdviseDenseParity:
    def test_matches_exhaustive_autotuner(
        self, machine, shared_profile_cache, tmp_path
    ):
        """Acceptance: pruned advise on 'dense' picks exactly the candidate
        the exhaustive AutoTuner selects with the OVERLAP model."""
        from repro.core.selection import AutoTuner

        coo = resolve_matrix("dense")
        tuner = AutoTuner(machine, profile_cache=shared_profile_cache)
        exhaustive = tuner.select(coo, precision="dp", model="overlap")
        service = AdvisorService(
            machine, cache_dir=tmp_path, profile_cache=shared_profile_cache
        )
        rec = service.advise("dense", model="overlap")
        assert rec.best.candidate == exhaustive.candidate
        assert rec.best.predicted_s == pytest.approx(
            exhaustive.predictions["overlap"]
        )


class TestAdviseMany:
    def test_batch_order_and_concurrency(self, service):
        matrices = [
            make_random_coo(150, 150, 1200, seed=s, with_values=False)
            for s in (11, 12, 13)
        ]
        out = service.advise_many(matrices, max_workers=2)
        assert len(out) == 3
        for coo, rec in zip(matrices, out):
            assert isinstance(rec, Recommendation)
            assert rec.nnz == coo.nnz

    def test_error_isolation(self, service, small):
        out = service.advise_many([small, "no-such-matrix", small])
        assert isinstance(out[0], Recommendation)
        assert isinstance(out[1], AdviseError)
        assert isinstance(out[2], Recommendation)
        assert "no-such-matrix" in out[1].error
        assert service.stats()["errors"] >= 1

    def test_timeout_isolated(self, service):
        out = service.advise_many(["dense"], timeout_s=0.001)
        assert len(out) == 1
        assert isinstance(out[0], AdviseError)
        assert out[0].kind == "timeout"
        assert service.stats()["timeouts"] == 1

    def test_latency_tracked(self, service, small):
        service.advise_many([small])
        stats = service.stats()
        assert stats["batches"] == 1
        assert stats["mean_latency_s"] > 0


class TestRecommendationPayload:
    def test_round_trip(self, service, small):
        rec = service.advise(small)
        back = Recommendation.from_payload(rec.to_payload(), cache_hit=True)
        assert back.fingerprint == rec.fingerprint
        assert back.options == rec.options
        assert back.cache_hit
        assert back.best.candidate == rec.best.candidate
        assert isinstance(back.best.block, (tuple, int, type(None)))

    def test_options_cache_key_distinguishes(self):
        a = AdviseOptions()
        b = AdviseOptions(prune=False)
        c = AdviseOptions(model="mem")
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3
