"""Tests for the MachineModel description."""

import pytest

from repro.errors import ModelError
from repro.machine import CORE2_XEON, GENERIC_MODERN, CacheLevel, MachineModel, get_preset
from repro.machine.costs import KernelCostModel
from repro.types import Impl

_GiB = 1024**3


def _make_machine(**overrides):
    base = dict(
        name="test",
        clock_hz=2e9,
        l1=CacheLevel(32 * 1024, 64, 30e9),
        l2=CacheLevel(4 * 1024 * 1024, 64, 12e9),
        mem_bandwidth_bps={1: 3 * _GiB, 2: 4 * _GiB},
        mem_latency_s=100e-9,
        latency_hide=0.6,
        eta_exposed={Impl.SCALAR: 0.35, Impl.SIMD: 0.3},
        x_cache_fraction=0.5,
        costs=KernelCostModel(),
        max_threads=4,
    )
    base.update(overrides)
    return MachineModel(**base)


class TestBandwidthLookup:
    def test_exact_counts(self):
        m = _make_machine()
        assert m.memory_bandwidth(1) == 3 * _GiB
        assert m.memory_bandwidth(2) == 4 * _GiB

    def test_saturation_fallback(self):
        m = _make_machine()
        assert m.memory_bandwidth(3) == 4 * _GiB  # largest below
        assert m.memory_bandwidth(8) == 4 * _GiB

    def test_rejects_zero_threads(self):
        with pytest.raises(ModelError):
            _make_machine().memory_bandwidth(0)

    def test_stream_bandwidth_tiers(self):
        m = _make_machine()
        assert m.stream_bandwidth(16 * 1024) == m.l1.bandwidth_bps
        assert m.stream_bandwidth(1024 * 1024) == m.l2.bandwidth_bps
        assert m.stream_bandwidth(64 * 1024 * 1024) == 3 * _GiB


class TestValidation:
    def test_rejects_bad_latency_hide(self):
        with pytest.raises(ModelError):
            _make_machine(latency_hide=1.5)

    def test_rejects_missing_eta(self):
        with pytest.raises(ModelError):
            _make_machine(eta_exposed={Impl.SCALAR: 0.3})

    def test_rejects_bad_x_fraction(self):
        with pytest.raises(ModelError):
            _make_machine(x_cache_fraction=0.0)

    def test_rejects_empty_bandwidth(self):
        with pytest.raises(ModelError):
            _make_machine(mem_bandwidth_bps={})

    def test_rejects_bad_cache(self):
        with pytest.raises(ModelError):
            CacheLevel(0, 64, 1e9)
        with pytest.raises(ModelError):
            CacheLevel(1024, 64, 0.0)


class TestHelpers:
    def test_effective_latency(self):
        m = _make_machine()
        assert m.effective_latency_s() == pytest.approx(40e-9)

    def test_cycles_to_seconds(self):
        m = _make_machine()
        assert m.cycles_to_seconds(2e9) == pytest.approx(1.0)

    def test_with_overrides(self):
        m = _make_machine()
        m2 = m.with_overrides(latency_hide=0.9)
        assert m2.latency_hide == 0.9
        assert m.latency_hide == 0.6  # original untouched
        assert m2.name == m.name


class TestPresets:
    def test_core2_parameters_match_paper(self):
        m = CORE2_XEON
        assert m.clock_hz == pytest.approx(2.66e9)
        assert m.l1.size_bytes == 32 * 1024
        assert m.l2.size_bytes == 4 * 1024 * 1024
        # STREAM figure from the paper: 3.36 GiB/s for one core.
        assert m.memory_bandwidth(1) == pytest.approx(3.36 * _GiB)
        assert m.max_threads == 4

    def test_get_preset(self):
        assert get_preset("core2-xeon-2.66") is CORE2_XEON
        assert get_preset("generic-modern") is GENERIC_MODERN
        with pytest.raises(KeyError):
            get_preset("cray-1")

    def test_modern_has_wider_simd(self):
        assert GENERIC_MODERN.costs.simd_bytes == 32
        assert GENERIC_MODERN.costs.lanes("sp") == 8
