"""Tests for :mod:`repro.durability` — the crash-consistency layer.

Four layers of assurance, bottom up:

* **envelope codec properties** (hypothesis): encode/decode round-trips
  exactly for arbitrary JSON payloads, and *every* single-byte flip or
  truncation of an enveloped artifact is detected — there is no damaged
  input that decodes to wrong data;
* **quarantine + reporting**: corrupt artifacts move (not vanish), keep a
  ``.why.json`` sidecar, and forward ``cache_corrupt_detected`` /
  ``cache_write_failed`` through the process-global listener;
* **fsck**: detect, repair, partition walk and the oldest-first GC with
  its never-collect set (profiles, ``current.json``, the live model);
* **the torture invariant** (the acceptance pin): 40 seeded
  kill/corrupt-at-write-site cycles across all five cache owners produce
  zero corrupt loads, and ``fsck --repair`` then heals the tree to clean.
"""

from __future__ import annotations

import json
import os
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.durability.envelope import (
    ENVELOPE_MAGIC,
    EnvelopeError,
    decode_envelope,
    decode_line,
    encode_envelope,
    encode_line,
    is_enveloped,
    is_enveloped_line,
)
from repro.durability.fsck import PROBLEM_KINDS, fsck_tree
from repro.durability.report import (
    QUARANTINE_DIR,
    clear_durability_listener,
    quarantine_artifact,
    report_corruption,
    report_write_failure,
    set_durability_listener,
)
from repro.durability.torture import OWNERS, run_torture
from repro.errors import CacheWriteError, ReproError
from repro.fleet.supervisor import (
    MAX_BACKOFF_S,
    RESTART_BACKOFF_S,
    FleetConfig,
    FleetSupervisor,
)
from repro.ioutils import (
    CACHE_DECODE_ERRORS,
    append_envelope_lines,
    append_jsonl,
    atomic_write_json,
    read_envelope,
    read_envelope_lines,
    write_envelope,
)

# --------------------------------------------------------------------- #
# Envelope codec: property suite
# --------------------------------------------------------------------- #

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
gen_tokens = st.text(
    alphabet=string.ascii_letters + string.digits + "._-",
    min_size=1,
    max_size=16,
)


class TestEnvelopeCodec:
    @given(payload=json_values, schema=st.integers(0, 999), gen=gen_tokens)
    def test_round_trip_exact(self, payload, schema, gen):
        data = encode_envelope(payload, schema=schema, gen=gen)
        assert is_enveloped(data)
        decoded, meta = decode_envelope(data.encode("utf-8"))
        assert decoded == payload
        assert meta.enveloped
        assert meta.schema == schema
        assert meta.gen == gen

    @given(payload=json_values)
    def test_legacy_plain_json_decodes(self, payload):
        text = json.dumps(payload)
        decoded, meta = decode_envelope(text.encode("utf-8"))
        assert decoded == payload
        assert not meta.enveloped

    @given(
        payload=json_values,
        offset=st.integers(0, 10_000),
        mask=st.sampled_from([0x01, 0x02, 0x10, 0x20, 0x80, 0xFF]),
    )
    def test_any_single_byte_flip_is_detected(self, payload, offset, mask):
        raw = bytearray(encode_envelope(payload, schema=3).encode("utf-8"))
        offset %= len(raw)
        raw[offset] ^= mask
        with pytest.raises(EnvelopeError):
            decode_envelope(bytes(raw))

    @given(payload=json_values, cut=st.integers(0, 10_000))
    def test_any_truncation_is_detected(self, payload, cut):
        raw = encode_envelope(payload, schema=3).encode("utf-8")
        cut %= len(raw)  # every proper prefix, including empty
        with pytest.raises(EnvelopeError):
            decode_envelope(raw[:cut])

    def test_every_byte_offset_exhaustively(self):
        """The hypothesis flips sample; this nails *every* offset."""
        payload = {"schema": 7, "records": [1.5, "x", None], "n": 42}
        raw = encode_envelope(payload, schema=7, gen="123-9").encode("utf-8")
        for offset in range(len(raw)):
            for mask in (0x01, 0x20, 0xFF):
                damaged = bytearray(raw)
                damaged[offset] ^= mask
                with pytest.raises(EnvelopeError):
                    decode_envelope(bytes(damaged))
            with pytest.raises(EnvelopeError):
                decode_envelope(raw[:offset])

    def test_future_version_is_rejected_not_misread(self):
        data = encode_envelope({"a": 1})
        bumped = data.replace(f"{ENVELOPE_MAGIC}1 ", f"{ENVELOPE_MAGIC}2 ", 1)
        with pytest.raises(EnvelopeError, match="version"):
            decode_envelope(bumped)

    def test_envelope_error_is_a_cache_decode_error(self):
        # The owners' pre-envelope corrupt-recovery paths catch
        # CACHE_DECODE_ERRORS; EnvelopeError must flow through them.
        assert isinstance(EnvelopeError("x"), CACHE_DECODE_ERRORS)


class TestLineCodec:
    @given(payload=json_values)
    def test_round_trip_exact(self, payload):
        line = encode_line(json.dumps(payload))
        assert is_enveloped_line(line)
        assert decode_line(line) == payload

    @given(payload=json_values)
    def test_legacy_plain_line_decodes(self, payload):
        assert decode_line(json.dumps(payload)) == payload

    @given(
        payload=json_values,
        offset=st.integers(0, 10_000),
        mask=st.sampled_from([0x01, 0x20, 0xFF]),
    )
    def test_any_single_char_flip_is_detected(self, payload, offset, mask):
        line = encode_line(json.dumps(payload))
        offset %= len(line)
        flipped = chr(ord(line[offset]) ^ mask)
        damaged = line[:offset] + flipped + line[offset + 1:]
        with pytest.raises(EnvelopeError):
            decode_line(damaged)

    def test_truncation_is_detected(self):
        line = encode_line(json.dumps({"cycle": 12, "t": 0.25}))
        for cut in range(len(line)):
            with pytest.raises(EnvelopeError):
                decode_line(line[:cut])


# --------------------------------------------------------------------- #
# File-level helpers: write_envelope / read_envelope / JSONL
# --------------------------------------------------------------------- #

class TestEnvelopeIo:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_envelope(path, {"schema": 2, "v": [1, 2, 3]}, schema=2)
        assert read_envelope(path) == {"schema": 2, "v": [1, 2, 3]}

    def test_legacy_file_reads_through(self, tmp_path):
        path = tmp_path / "old.json"
        atomic_write_json(path, {"schema": 1, "v": "pre-envelope"})
        assert read_envelope(path) == {"schema": 1, "v": "pre-envelope"}

    def test_corrupt_file_raises_envelope_error(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_envelope(path, {"v": 1})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(EnvelopeError):
            read_envelope(path)

    def test_read_envelope_lines_mixed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_envelope_lines(path, [json.dumps({"i": 1})])
        append_jsonl(path, {"i": 2})  # legacy plain line
        with path.open("a") as fh:
            fh.write("%e1%00000000%{\"i\": 3}\n")  # wrong CRC: torn
        entries = list(read_envelope_lines(path))
        assert [r for _, r, e in entries if e is None] == [{"i": 1}, {"i": 2}]
        assert [n for n, _, e in entries if e is not None] == [3]

    def test_write_failure_raises_typed_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        target = blocker / "sub" / "artifact.json"
        with pytest.raises(CacheWriteError):
            write_envelope(target, {"v": 1})
        with pytest.raises(CacheWriteError):
            atomic_write_json(target, {"v": 1})
        assert issubclass(CacheWriteError, ReproError)


# --------------------------------------------------------------------- #
# Quarantine + reporting
# --------------------------------------------------------------------- #

@pytest.fixture
def listener_events():
    events: list[dict] = []
    set_durability_listener(events.append)
    yield events
    clear_durability_listener()


class TestQuarantine:
    def test_moves_artifact_and_writes_sidecar(self, tmp_path, listener_events):
        path = tmp_path / "shard_1.json"
        path.write_bytes(b"garbage \x00\xff")
        dest = quarantine_artifact(
            path, tmp_path, owner="shards", error=EnvelopeError("CRC mismatch")
        )
        assert dest is not None
        assert dest.parent == tmp_path / QUARANTINE_DIR
        assert not path.exists()
        assert dest.read_bytes() == b"garbage \x00\xff"  # evidence survives
        why = read_envelope(dest.with_name(dest.name + ".why.json"))
        assert why["owner"] == "shards"
        assert why["error_type"] == "EnvelopeError"
        assert [e["kind"] for e in listener_events] == ["cache_corrupt_detected"]
        assert listener_events[0]["quarantined"] is True

    def test_name_collisions_keep_every_specimen(self, tmp_path):
        dests = []
        for _ in range(3):
            path = tmp_path / "rec_a.json"
            path.write_text("broken")
            dests.append(quarantine_artifact(
                path, tmp_path, owner="advisor", error=ValueError("bad")
            ))
        names = {d.name for d in dests}
        assert len(names) == 3
        assert "rec_a.json" in names

    def test_report_write_failure_forwards(self, listener_events):
        info = report_write_failure(
            owner="profiles", path="/x/y.json", error=OSError(28, "ENOSPC")
        )
        assert info["kind"] == "cache_write_failed"
        assert listener_events == [info]

    def test_raising_listener_is_swallowed(self):
        def bad_listener(info):
            raise RuntimeError("listener bug")

        set_durability_listener(bad_listener)
        try:
            info = report_corruption(
                owner="sweep", path="p", error=ValueError("x"),
                quarantined=False,
            )
            assert info["kind"] == "cache_corrupt_detected"
        finally:
            clear_durability_listener()


# --------------------------------------------------------------------- #
# fsck: detect, repair, partitions, GC
# --------------------------------------------------------------------- #

def _damaged_tree(root, monkeypatch):
    """A cache tree with one of each problem plus one legacy artifact."""
    write_envelope(root / "sweep_1.json", {"schema": 1, "ok": True})
    advisor = root / "advisor"
    advisor.mkdir()
    (advisor / "rec_deadbeef.json").write_bytes(b"\x00 not json \xff")
    profiles = root / "profiles"
    profiles.mkdir()
    atomic_write_json(profiles / "profile_old.json", {"schema": 1})
    trace = root / "learn" / "trace-000001.jsonl"
    append_envelope_lines(trace, [json.dumps({"i": 1}), json.dumps({"i": 2})])
    with trace.open("a") as fh:
        fh.write('%e1%00000000%{"i": 3}\n')
    (root / "sweep_2.json.12345-0.tmp").write_text("half a write")
    # Deterministic "writer is gone" regardless of host pid recycling.
    monkeypatch.setattr("repro.durability.fsck._pid_alive", lambda pid: False)


class TestFsck:
    def test_missing_root_is_clean(self, tmp_path):
        report = fsck_tree(tmp_path / "nope")
        assert report.clean
        assert report.files_checked == 0

    def test_detect_without_repair_touches_nothing(self, tmp_path, monkeypatch):
        _damaged_tree(tmp_path, monkeypatch)
        report = fsck_tree(tmp_path)
        counts = report.counts()
        assert counts["corrupt"] == 1
        assert counts["torn-line"] == 1
        assert counts["stale-tmp"] == 1
        assert counts["legacy"] == 1
        assert not report.clean
        assert len(report.unrepaired) == 3
        # Read-only: the damaged files are all still in place.
        assert (tmp_path / "advisor" / "rec_deadbeef.json").exists()
        assert (tmp_path / "sweep_2.json.12345-0.tmp").exists()
        assert not (tmp_path / QUARANTINE_DIR).exists()

    def test_repair_heals_every_problem(self, tmp_path, monkeypatch):
        _damaged_tree(tmp_path, monkeypatch)
        report = fsck_tree(tmp_path, repair=True)
        assert report.clean
        assert all(f.repaired for f in report.problems)
        # Corrupt advisor entry moved to quarantine, not destroyed.
        assert not (tmp_path / "advisor" / "rec_deadbeef.json").exists()
        assert (tmp_path / QUARANTINE_DIR / "rec_deadbeef.json").exists()
        # Torn trace segment rewritten: only verifying lines survive.
        records = [
            r for _, r, e in
            read_envelope_lines(tmp_path / "learn" / "trace-000001.jsonl")
            if e is None
        ]
        assert records == [{"i": 1}, {"i": 2}]
        assert not (tmp_path / "sweep_2.json.12345-0.tmp").exists()
        # A second, read-only pass finds no problems at all.
        after = fsck_tree(tmp_path)
        assert after.clean
        assert not after.problems

    def test_orphan_model_is_informational(self, tmp_path):
        models = tmp_path / "learn" / "models"
        write_envelope(models / "model_aaa.json", {"schema": 1}, schema=1)
        write_envelope(models / "model_bbb.json", {"schema": 1}, schema=1)
        write_envelope(
            models / "current.json", {"schema": 1, "version": "aaa"}, schema=1
        )
        report = fsck_tree(tmp_path)
        orphans = [f for f in report.findings if f.kind == "orphan"]
        assert [f.path for f in orphans] == [str(models / "model_bbb.json")]
        assert report.clean  # orphans are not problems

    def test_worker_partition_quarantines_locally(self, tmp_path):
        part = tmp_path / "fleet" / "worker-0"
        shard_dir = part / "shards" / "fp0"
        shard_dir.mkdir(parents=True)
        (shard_dir / "shard_1.json").write_bytes(b"torn!")
        report = fsck_tree(tmp_path, repair=True)
        assert report.clean
        # Quarantine lands inside the worker's partition — the same
        # place the worker's own ShardStore would put it.
        assert (part / QUARANTINE_DIR / "shard_1.json").exists()
        assert not (tmp_path / QUARANTINE_DIR).exists()

    def test_gc_is_oldest_first_and_spares_the_precious(self, tmp_path):
        write_envelope(tmp_path / "profiles" / "profile_a.json", {"schema": 1})
        models = tmp_path / "learn" / "models"
        write_envelope(models / "model_live.json", {"schema": 1})
        write_envelope(models / "model_orphan.json", {"schema": 1})
        write_envelope(models / "current.json", {"schema": 1, "version": "live"})
        sweeps = [tmp_path / f"sweep_{i}.json" for i in (1, 2, 3)]
        for i, path in enumerate(sweeps):
            write_envelope(path, {"schema": 1, "i": i})
            os.utime(path, ns=(1_000_000_000 * (i + 1),) * 2)
        os.utime(models / "model_orphan.json", ns=(500_000_000, 500_000_000))

        # Bound low enough to force some eviction but keep the newest sweep.
        keep = (
            (models / "current.json").stat().st_size
            + (models / "model_live.json").stat().st_size
            + (tmp_path / "profiles" / "profile_a.json").stat().st_size
            + sweeps[2].stat().st_size
        )
        report = fsck_tree(tmp_path, gc_max_bytes=keep)
        removed = [f.path for f in report.findings if f.kind == "gc"]
        # Oldest first: the orphan model (oldest), then sweeps 1 and 2.
        assert removed == [
            str(models / "model_orphan.json"), str(sweeps[0]), str(sweeps[1]),
        ]
        assert sweeps[2].exists()
        assert (models / "model_live.json").exists()
        assert (models / "current.json").exists()
        assert (tmp_path / "profiles" / "profile_a.json").exists()
        assert report.bytes_total <= keep

    def test_gc_zero_budget_never_touches_the_precious(self, tmp_path):
        write_envelope(tmp_path / "profiles" / "profile_a.json", {"schema": 1})
        models = tmp_path / "learn" / "models"
        write_envelope(models / "model_live.json", {"schema": 1})
        write_envelope(models / "current.json", {"schema": 1, "version": "live"})
        write_envelope(tmp_path / "sweep_1.json", {"schema": 1})
        fsck_tree(tmp_path, gc_max_bytes=0)
        assert not (tmp_path / "sweep_1.json").exists()
        assert (tmp_path / "profiles" / "profile_a.json").exists()
        assert (models / "model_live.json").exists()
        assert (models / "current.json").exists()

    def test_report_payload_shape(self, tmp_path):
        write_envelope(tmp_path / "sweep_1.json", {"schema": 1})
        payload = fsck_tree(tmp_path).to_payload()
        assert payload["clean"] is True
        assert payload["files_checked"] == 1
        assert payload["findings"] == []
        assert set(PROBLEM_KINDS) == {"corrupt", "torn-line", "stale-tmp"}


class TestFsckCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_envelope(tmp_path / "sweep_1.json", {"schema": 1})
        rc = cli_main(["fsck", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_problems_exit_one_until_repaired(self, tmp_path, capsys):
        (tmp_path / "sweep_1.json").write_bytes(b"\x00 torn")
        assert cli_main(["fsck", "--cache-dir", str(tmp_path)]) == 1
        assert cli_main(
            ["fsck", "--cache-dir", str(tmp_path), "--repair"]
        ) == 0
        capsys.readouterr()
        rc = cli_main(
            ["fsck", "--cache-dir", str(tmp_path), "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_gc_requires_max_bytes(self, tmp_path, capsys):
        rc = cli_main(["fsck", "--cache-dir", str(tmp_path), "--gc"])
        assert rc == 2
        capsys.readouterr()


# --------------------------------------------------------------------- #
# Supervisor restart jitter (satellite: seeded decorrelated backoff)
# --------------------------------------------------------------------- #

class TestRestartJitter:
    def _supervisor(self, tmp_path, seed=0, workers=2):
        return FleetSupervisor(FleetConfig(
            workers=workers, cache_dir=str(tmp_path), restart_seed=seed,
        ))

    def test_equal_seeds_replay_identically(self, tmp_path):
        a = self._supervisor(tmp_path, seed=7)
        b = self._supervisor(tmp_path, seed=7)
        seq_a = [a._next_backoff(0) for _ in range(8)]
        seq_b = [b._next_backoff(0) for _ in range(8)]
        assert seq_a == seq_b

    def test_bounds_and_growth(self, tmp_path):
        sup = self._supervisor(tmp_path, seed=1)
        seq = [sup._next_backoff(0) for _ in range(12)]
        assert all(RESTART_BACKOFF_S <= v <= MAX_BACKOFF_S for v in seq)
        # Decorrelated jitter: each draw is bounded by 3x the previous.
        assert seq[0] <= RESTART_BACKOFF_S * 3.0
        for prev, cur in zip(seq, seq[1:]):
            assert cur <= min(MAX_BACKOFF_S, prev * 3.0)

    def test_slots_draw_from_distinct_streams(self, tmp_path):
        sup = self._supervisor(tmp_path, seed=3, workers=2)
        seq0 = [sup._next_backoff(0) for _ in range(6)]
        seq1 = [sup._next_backoff(1) for _ in range(6)]
        assert seq0 != seq1  # co-crashing workers must not stampede together

    def test_success_resets_the_window(self, tmp_path):
        sup = self._supervisor(tmp_path, seed=5)
        for _ in range(10):
            sup._next_backoff(0)
        # What _restart_after does after a successful respawn:
        sup._prev_backoff[0] = RESTART_BACKOFF_S
        assert sup._next_backoff(0) <= RESTART_BACKOFF_S * 3.0


# --------------------------------------------------------------------- #
# The torture invariant (acceptance pin)
# --------------------------------------------------------------------- #

@pytest.mark.slow
class TestTortureInvariant:
    def test_forty_crash_cycles_never_corrupt_a_load(self, tmp_path):
        summary = run_torture(tmp_path, cycles=40, seed=3)
        assert summary["violations"] == []
        assert summary["clean_after_repair"] is True
        assert summary["ok"] is True
        assert summary["kills"] + summary["corruptions"] == 40
        assert summary["kills"] > 0 and summary["corruptions"] > 0
        # Round-robin: all five owners were exercised.
        assert len(OWNERS) == 5
        for owner in OWNERS:
            assert summary["per_owner"][owner.name]["writes"] >= 1
