"""Property-based tests over the machine layer and selection invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learned import DecisionTree
from repro.formats import COOMatrix, build_format
from repro.machine import CORE2_XEON, simulate
from repro.machine.cache import estimate_stream_misses


class TestSimulatorProperties:
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(20, 120),
        density=st.floats(0.01, 0.2),
    )
    @settings(max_examples=25, deadline=None)
    def test_total_dominates_components(self, seed, n, density):
        rng = np.random.default_rng(seed)
        nnz = max(int(n * n * density), 1)
        coo = COOMatrix(
            n, n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), None
        )
        fmt = build_format(coo, "csr", with_values=False)
        res = simulate(fmt, CORE2_XEON, "dp", "scalar")
        assert res.t_total >= res.t_mem > 0
        assert res.t_total >= res.t_comp_exposed >= 0
        assert res.t_comp >= res.t_comp_exposed

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_threads_never_hurt_much(self, seed):
        rng = np.random.default_rng(seed)
        n, nnz = 3000, 30_000
        coo = COOMatrix(
            n, n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), None
        )
        fmt = build_format(coo, "csr", with_values=False)
        t1 = simulate(fmt, CORE2_XEON, "dp", "scalar", nthreads=1).t_total
        t4 = simulate(fmt, CORE2_XEON, "dp", "scalar", nthreads=4).t_total
        assert t4 <= t1 * 1.01

    @given(
        seed=st.integers(0, 500),
        kind_block=st.sampled_from([
            ("csr", None), ("bcsr", (2, 2)), ("bcsd", 3), ("vbl", None),
        ]),
    )
    @settings(max_examples=20, deadline=None)
    def test_sp_ws_strictly_smaller(self, seed, kind_block):
        rng = np.random.default_rng(seed)
        n, nnz = 100, 600
        coo = COOMatrix(
            n, n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), None
        )
        kind, block = kind_block
        fmt = build_format(coo, kind, block, with_values=False)
        assert fmt.working_set("sp") < fmt.working_set("dp")


class TestCacheEstimatorProperties:
    @given(
        seed=st.integers(0, 2000),
        n_lines=st.integers(64, 4096),
        length=st.integers(100, 20_000),
        budget=st.integers(8, 1024),
    )
    @settings(max_examples=40, deadline=None)
    def test_miss_count_bounds(self, seed, n_lines, length, budget):
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, n_lines, length)
        misses = estimate_stream_misses(lines, budget)
        assert 0 <= misses <= length

    @given(seed=st.integers(0, 2000), length=st.integers(10, 5000))
    @settings(max_examples=30, deadline=None)
    def test_single_line_never_misses(self, seed, length):
        lines = np.zeros(length, dtype=np.int64)
        assert estimate_stream_misses(lines, 4) == 0


class TestDecisionTreeProperties:
    @given(
        seed=st.integers(0, 5000),
        n=st.integers(4, 80),
        d=st.integers(1, 6),
        n_classes=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_predictions_from_label_set(self, seed, n, d, n_classes):
        rng = np.random.default_rng(seed)
        X = rng.random((n, d))
        labels = [f"c{i}" for i in rng.integers(0, n_classes, n)]
        tree = DecisionTree(max_depth=3).fit(X, labels)
        for x in X[:10]:
            assert tree.predict(x) in set(labels)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_perfectly_separable_is_learned(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, (60, 3))
        y = ["lo" if x[1] < 0.5 else "hi" for x in X]
        tree = DecisionTree(max_depth=3).fit(X, y)
        correct = sum(tree.predict(x) == yy for x, yy in zip(X, y))
        assert correct >= len(y) - 1  # allow one boundary tie
