"""Tests for the canonical COO container."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeMismatchError
from repro.formats import COOMatrix

from .conftest import make_random_coo


class TestConstruction:
    def test_sorts_row_major(self):
        coo = COOMatrix(3, 3, [2, 0, 1, 0], [0, 2, 1, 0], [1.0, 2.0, 3.0, 4.0])
        assert coo.rows.tolist() == [0, 0, 1, 2]
        assert coo.cols.tolist() == [0, 2, 1, 0]
        assert coo.values.tolist() == [4.0, 2.0, 3.0, 1.0]

    def test_merges_duplicates_summing_values(self):
        coo = COOMatrix(2, 2, [0, 0, 1, 0], [1, 1, 0, 1], [1.0, 2.0, 5.0, 4.0])
        assert coo.nnz == 2
        assert coo.to_dense()[0, 1] == pytest.approx(7.0)
        assert coo.to_dense()[1, 0] == pytest.approx(5.0)

    def test_merges_duplicates_pattern_only(self):
        coo = COOMatrix(2, 2, [0, 0], [1, 1], None)
        assert coo.nnz == 1
        assert coo.values is None

    def test_empty_matrix(self):
        coo = COOMatrix(5, 5, [], [], [])
        assert coo.nnz == 0
        assert coo.to_dense().shape == (5, 5)

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0, 2], [0, 0], [1.0, 1.0])
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0], [5], [1.0])

    def test_rejects_negative_indices(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [-1], [0], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            COOMatrix(2, 2, [0, 1], [0], [1.0])
        with pytest.raises(ShapeMismatchError):
            COOMatrix(2, 2, [0], [0], [1.0, 2.0])

    def test_arrays_are_readonly(self):
        coo = COOMatrix(2, 2, [0], [1], [1.0])
        with pytest.raises(ValueError):
            coo.rows[0] = 1


class TestConversions:
    def test_from_dense_round_trip(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((7, 5)) * (rng.random((7, 5)) < 0.4)
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeMismatchError):
            COOMatrix.from_dense(np.ones(4))

    def test_eye(self):
        eye = COOMatrix.eye(4)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(4))

    def test_pattern_only_drops_values(self):
        coo = make_random_coo(10, 10, 30, seed=1)
        pat = coo.pattern_only()
        assert pat.values is None
        assert pat.nnz == coo.nnz
        assert not pat.has_values

    def test_with_values(self):
        coo = make_random_coo(10, 10, 30, seed=2, with_values=False)
        vals = np.arange(coo.nnz, dtype=float)
        full = coo.with_values(vals)
        assert full.has_values
        np.testing.assert_array_equal(full.values, vals)


class TestBehaviour:
    def test_spmv_matches_dense(self, small_coo, small_x):
        expected = small_coo.to_dense() @ small_x
        np.testing.assert_allclose(small_coo.spmv(small_x), expected)

    def test_spmv_rejects_wrong_x(self, small_coo):
        with pytest.raises(ShapeMismatchError):
            small_coo.spmv(np.ones(small_coo.ncols + 1))

    def test_spmv_requires_values(self, small_coo, small_x):
        with pytest.raises(FormatError):
            small_coo.pattern_only().spmv(small_x)

    def test_row_counts(self):
        coo = COOMatrix(4, 4, [0, 0, 2], [0, 1, 3], [1.0, 1.0, 1.0])
        assert coo.row_counts().tolist() == [2, 0, 1, 0]

    def test_equality(self):
        a = make_random_coo(8, 8, 20, seed=5)
        b = make_random_coo(8, 8, 20, seed=5)
        c = make_random_coo(8, 8, 20, seed=6)
        assert a == b
        assert a != c
        assert a != a.pattern_only()

    def test_working_set_accounting(self):
        coo = make_random_coo(10, 12, 40, seed=4)
        e = 8  # dp
        expected = (
            e * coo.nnz          # values
            + 2 * 4 * coo.nnz    # row + col indices
            + e * (10 + 12)      # x and y
        )
        assert coo.working_set("dp") == expected

    def test_padding_is_zero(self, small_coo):
        assert small_coo.padding == 0
        assert small_coo.padding_ratio == 1.0
