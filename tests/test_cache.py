"""Tests for the cache models (windowed estimator + LRU oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import (
    LRUCache,
    estimate_stream_misses,
    estimate_stream_misses_windowed,
    x_budget_lines,
)


class TestBudget:
    def test_basic(self):
        assert x_budget_lines(4 * 1024 * 1024, 64, 0.5) == 32768

    def test_never_zero(self):
        assert x_budget_lines(16, 64, 0.5) == 1


class TestEstimator:
    def test_resident_stream_no_misses(self):
        lines = np.tile(np.arange(10), 100)
        assert estimate_stream_misses(lines, budget_lines=16) == 0

    def test_empty_stream(self):
        assert estimate_stream_misses(np.empty(0, dtype=int), 100) == 0

    def test_zero_budget(self):
        assert estimate_stream_misses(np.arange(10), 0) == 0

    def test_sequential_sweep_is_free(self):
        """A pure forward sweep touches each line once per iteration —
        that is streaming traffic (already in ws), not latency: the
        compulsory discount cancels it."""
        lines = np.arange(1000)
        assert estimate_stream_misses(lines, budget_lines=50) == 0
        # Without the discount the raw windowed count shows the thrash.
        raw = estimate_stream_misses(
            lines, budget_lines=50, discount_compulsory=False
        )
        assert raw >= 900

    def test_irregular_rescans_cost_beyond_footprint(self):
        """Random accesses over a big footprint keep re-missing the same
        lines: the miss count exceeds the footprint even after discount."""
        rng = np.random.default_rng(7)
        lines = rng.integers(0, 4096, 60_000)
        misses = estimate_stream_misses(lines, budget_lines=256)
        assert misses > 4096

    def test_random_stream_misses_scale_with_footprint(self):
        rng = np.random.default_rng(0)
        small = rng.integers(0, 64, 4000)
        large = rng.integers(0, 4096, 4000)
        budget = 128
        m_small = estimate_stream_misses(small, budget)
        m_large = estimate_stream_misses(large, budget)
        assert m_small == 0  # footprint fits
        assert m_large > 1000

    def test_locality_beats_random(self):
        """A banded stream (mesh matrix) must miss far less than a uniform
        random stream of the same length and footprint."""
        rng = np.random.default_rng(1)
        n_lines = 2048
        length = 20000
        banded = (np.arange(length) // 10) % n_lines  # slow sweep
        random = rng.integers(0, n_lines, length)
        budget = 256
        assert (
            estimate_stream_misses(banded, budget)
            < estimate_stream_misses(random, budget) / 2
        )

    def test_non_cyclic_counts_compulsory(self):
        lines = np.arange(100)
        cyclic = estimate_stream_misses(lines, 10, cyclic=True)
        cold = estimate_stream_misses(lines, 10, cyclic=False)
        assert cold >= cyclic  # cold start adds the first window's misses

    def test_monotone_in_budget(self):
        rng = np.random.default_rng(2)
        lines = rng.integers(0, 1024, 10000)
        misses = [
            estimate_stream_misses(lines, b) for b in (32, 128, 512, 2048)
        ]
        assert misses == sorted(misses, reverse=True)


@st.composite
def _stream_and_budget(draw):
    """A line-id stream with tunable locality, plus a budget."""
    n_lines = draw(st.integers(min_value=1, max_value=300))
    length = draw(st.integers(min_value=0, max_value=2000))
    style = draw(st.sampled_from(("random", "sweep", "banded", "clustered")))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if style == "random":
        lines = rng.integers(0, n_lines, length)
    elif style == "sweep":
        lines = np.arange(length) % n_lines
    elif style == "banded":
        stride = draw(st.integers(min_value=1, max_value=50))
        lines = (np.arange(length) // stride) % n_lines
    else:  # clustered: short runs of repeated lines
        lines = np.repeat(
            rng.integers(0, n_lines, (length // 4) + 1), 4
        )[:length]
    budget = draw(st.integers(min_value=0, max_value=n_lines + 50))
    return lines.astype(np.int64), budget


class TestVectorizedEquivalence:
    """The vectorized estimator IS the windowed loop, just faster.

    The loop version is kept verbatim as the executable specification;
    these tests pin the vectorized rewrite to it exactly — any disagreement
    on any stream is a bug, not a tolerance question.
    """

    @settings(max_examples=300, deadline=None, derandomize=True)
    @given(
        _stream_and_budget(),
        st.booleans(),
        st.booleans(),
    )
    def test_matches_windowed_loop(self, sb, cyclic, discount):
        lines, budget = sb
        assert estimate_stream_misses(
            lines, budget, cyclic=cyclic, discount_compulsory=discount
        ) == estimate_stream_misses_windowed(
            lines, budget, cyclic=cyclic, discount_compulsory=discount
        )

    def test_matches_on_window_boundary_lengths(self):
        # Stream lengths straddling multiples of the window size exercise
        # the ragged last window and the cyclic wrap to it.
        budget = 16
        rng = np.random.default_rng(11)
        for length in (15, 16, 17, 31, 32, 33, 64, 65):
            lines = rng.integers(0, 40, length)
            for cyclic in (True, False):
                for discount in (True, False):
                    assert estimate_stream_misses(
                        lines, budget, cyclic=cyclic, discount_compulsory=discount
                    ) == estimate_stream_misses_windowed(
                        lines, budget, cyclic=cyclic, discount_compulsory=discount
                    ), (length, cyclic, discount)

    def test_single_window_stream(self):
        # Whole stream fits one window: cyclic wraps to itself (every line
        # present → zero misses pre-discount is impossible, it's the same
        # window), non-cyclic charges it wholesale.
        lines = np.array([5, 6, 5, 7], dtype=np.int64)
        for cyclic in (True, False):
            for discount in (True, False):
                assert estimate_stream_misses(
                    lines, 2, cyclic=cyclic, discount_compulsory=discount
                ) == estimate_stream_misses_windowed(
                    lines, 2, cyclic=cyclic, discount_compulsory=discount
                )

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(_stream_and_budget())
    def test_resident_footprint_matches_lru_exactly(self, sb):
        """When the distinct footprint fits the cache, both the estimator
        and the true LRU (after its compulsory cold misses) agree: zero."""
        lines, budget = sb
        if len(lines) == 0 or budget == 0:
            return
        distinct = int(np.unique(lines).shape[0])
        if distinct > budget:
            return
        assert estimate_stream_misses(lines, budget) == 0
        lru = LRUCache(budget).run(lines)
        assert lru == distinct  # compulsory misses only


class TestLRUOracle:
    def test_basic_hit_miss(self):
        c = LRUCache(2)
        assert not c.access(1)   # miss
        assert not c.access(2)   # miss
        assert c.access(1)       # hit
        assert not c.access(3)   # miss, evicts 2 (LRU)
        assert not c.access(2)   # miss again

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_run_counts_misses(self):
        c = LRUCache(4)
        assert c.run(np.array([0, 1, 2, 3, 0, 1, 2, 3])) == 4

    def test_estimator_tracks_oracle_ordering(self):
        """On contrasting streams the fast estimator must order miss rates
        the same way the exact LRU does."""
        rng = np.random.default_rng(3)
        length, n_lines, cap = 6000, 512, 64
        streams = {
            "regular": (np.arange(length) // 20) % n_lines,
            "random": rng.integers(0, n_lines, length),
        }
        est = {
            k: estimate_stream_misses(v, cap) for k, v in streams.items()
        }
        lru = {k: LRUCache(cap).run(v) for k, v in streams.items()}
        assert (est["regular"] < est["random"]) == (
            lru["regular"] < lru["random"]
        )
