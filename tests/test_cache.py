"""Tests for the cache models (windowed estimator + LRU oracle)."""

import numpy as np
import pytest

from repro.machine.cache import LRUCache, estimate_stream_misses, x_budget_lines


class TestBudget:
    def test_basic(self):
        assert x_budget_lines(4 * 1024 * 1024, 64, 0.5) == 32768

    def test_never_zero(self):
        assert x_budget_lines(16, 64, 0.5) == 1


class TestEstimator:
    def test_resident_stream_no_misses(self):
        lines = np.tile(np.arange(10), 100)
        assert estimate_stream_misses(lines, budget_lines=16) == 0

    def test_empty_stream(self):
        assert estimate_stream_misses(np.empty(0, dtype=int), 100) == 0

    def test_zero_budget(self):
        assert estimate_stream_misses(np.arange(10), 0) == 0

    def test_sequential_sweep_is_free(self):
        """A pure forward sweep touches each line once per iteration —
        that is streaming traffic (already in ws), not latency: the
        compulsory discount cancels it."""
        lines = np.arange(1000)
        assert estimate_stream_misses(lines, budget_lines=50) == 0
        # Without the discount the raw windowed count shows the thrash.
        raw = estimate_stream_misses(
            lines, budget_lines=50, discount_compulsory=False
        )
        assert raw >= 900

    def test_irregular_rescans_cost_beyond_footprint(self):
        """Random accesses over a big footprint keep re-missing the same
        lines: the miss count exceeds the footprint even after discount."""
        rng = np.random.default_rng(7)
        lines = rng.integers(0, 4096, 60_000)
        misses = estimate_stream_misses(lines, budget_lines=256)
        assert misses > 4096

    def test_random_stream_misses_scale_with_footprint(self):
        rng = np.random.default_rng(0)
        small = rng.integers(0, 64, 4000)
        large = rng.integers(0, 4096, 4000)
        budget = 128
        m_small = estimate_stream_misses(small, budget)
        m_large = estimate_stream_misses(large, budget)
        assert m_small == 0  # footprint fits
        assert m_large > 1000

    def test_locality_beats_random(self):
        """A banded stream (mesh matrix) must miss far less than a uniform
        random stream of the same length and footprint."""
        rng = np.random.default_rng(1)
        n_lines = 2048
        length = 20000
        banded = (np.arange(length) // 10) % n_lines  # slow sweep
        random = rng.integers(0, n_lines, length)
        budget = 256
        assert (
            estimate_stream_misses(banded, budget)
            < estimate_stream_misses(random, budget) / 2
        )

    def test_non_cyclic_counts_compulsory(self):
        lines = np.arange(100)
        cyclic = estimate_stream_misses(lines, 10, cyclic=True)
        cold = estimate_stream_misses(lines, 10, cyclic=False)
        assert cold >= cyclic  # cold start adds the first window's misses

    def test_monotone_in_budget(self):
        rng = np.random.default_rng(2)
        lines = rng.integers(0, 1024, 10000)
        misses = [
            estimate_stream_misses(lines, b) for b in (32, 128, 512, 2048)
        ]
        assert misses == sorted(misses, reverse=True)


class TestLRUOracle:
    def test_basic_hit_miss(self):
        c = LRUCache(2)
        assert not c.access(1)   # miss
        assert not c.access(2)   # miss
        assert c.access(1)       # hit
        assert not c.access(3)   # miss, evicts 2 (LRU)
        assert not c.access(2)   # miss again

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_run_counts_misses(self):
        c = LRUCache(4)
        assert c.run(np.array([0, 1, 2, 3, 0, 1, 2, 3])) == 4

    def test_estimator_tracks_oracle_ordering(self):
        """On contrasting streams the fast estimator must order miss rates
        the same way the exact LRU does."""
        rng = np.random.default_rng(3)
        length, n_lines, cap = 6000, 512, 64
        streams = {
            "regular": (np.arange(length) // 20) % n_lines,
            "random": rng.integers(0, n_lines, length),
        }
        est = {
            k: estimate_stream_misses(v, cap) for k, v in streams.items()
        }
        lru = {k: LRUCache(cap).run(v) for k, v in streams.items()}
        assert (est["regular"] < est["random"]) == (
            lru["regular"] < lru["random"]
        )
