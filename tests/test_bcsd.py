"""Tests for the BCSD format (aligned diagonal blocks with padding)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import BCSDMatrix, COOMatrix
from repro.kernels import spmv_bcsd_scalar

from .conftest import make_random_coo


class TestGeometry:
    def test_perfect_diagonal_single_block(self):
        coo = COOMatrix(4, 4, [0, 1, 2, 3], [0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0])
        bcsd = BCSDMatrix.from_coo(coo, 4)
        assert bcsd.n_blocks == 1
        assert bcsd.padding == 0
        np.testing.assert_array_equal(bcsd.bval[0], [1, 2, 3, 4])

    def test_segment_alignment(self):
        """A diagonal crossing a segment boundary splits into two blocks."""
        coo = COOMatrix(4, 4, [1, 2], [1, 2], [5.0, 6.0])
        bcsd = BCSDMatrix.from_coo(coo, 2)
        assert bcsd.n_blocks == 2
        assert bcsd.padding == 2

    def test_left_edge_diagonal_negative_start(self):
        """An element below the main diagonal in the first column produces
        a block starting at a negative column — pure padding off-matrix."""
        coo = COOMatrix(4, 4, [1, 3], [0, 2], [1.0, 2.0])
        bcsd = BCSDMatrix.from_coo(coo, 2)
        assert (bcsd.bcol_ind < 0).any()
        np.testing.assert_array_equal(bcsd.to_dense(), coo.to_dense())

    def test_offsets_within_segment(self):
        coo = make_random_coo(20, 20, 80, seed=11, with_values=False)
        bcsd = BCSDMatrix.from_coo(coo, 4, with_values=False)
        assert bcsd.n_block_rows == 5
        assert bcsd.nnz_stored == 4 * bcsd.n_blocks


class TestAccounting:
    @pytest.mark.parametrize("b", [2, 3, 5, 8])
    def test_working_set_formula(self, b):
        coo = make_random_coo(30, 30, 120, seed=12)
        bcsd = BCSDMatrix.from_coo(coo, b)
        nb = bcsd.n_blocks
        nseg = -(-30 // b)
        expected = 8 * nb * b + 4 * nb + 4 * (nseg + 1) + 8 * 60
        assert bcsd.working_set("dp") == expected

    def test_descriptor(self):
        coo = make_random_coo(10, 10, 30, seed=13)
        assert BCSDMatrix.from_coo(coo, 3).block_descriptor() == ("bcsd", 3)

    def test_x_stream_width_is_b(self):
        coo = make_random_coo(12, 12, 40, seed=14, with_values=False)
        bcsd = BCSDMatrix.from_coo(coo, 5, with_values=False)
        assert bcsd.x_access_stream().width == 5


class TestSpmv:
    @pytest.mark.parametrize("b", [2, 3, 4, 6, 8])
    def test_matches_dense_reference(self, b, small_coo, small_x):
        bcsd = BCSDMatrix.from_coo(small_coo, b)
        expected = small_coo.to_dense() @ small_x
        np.testing.assert_allclose(bcsd.spmv(small_x), expected)

    def test_scalar_kernel_matches(self, small_coo, small_x):
        bcsd = BCSDMatrix.from_coo(small_coo, 4)
        out = np.zeros(bcsd.nrows)
        spmv_bcsd_scalar(bcsd, small_x, out)
        np.testing.assert_allclose(out, bcsd.spmv(small_x))

    def test_right_edge_clipping(self):
        """Diagonals running past the last column are masked, not read."""
        coo = COOMatrix(4, 4, [0, 1], [3, 3], [2.0, 3.0])
        bcsd = BCSDMatrix.from_coo(coo, 4)
        x = np.array([1.0, 1.0, 1.0, 10.0])
        np.testing.assert_allclose(bcsd.spmv(x), [20.0, 30.0, 0.0, 0.0])

    def test_row_overhang_last_segment(self):
        coo = COOMatrix(5, 5, [4], [0], [1.0])
        bcsd = BCSDMatrix.from_coo(coo, 3)
        y = bcsd.spmv(np.ones(5))
        np.testing.assert_allclose(y, [0, 0, 0, 0, 1.0])

    def test_to_dense_round_trip(self, small_coo):
        bcsd = BCSDMatrix.from_coo(small_coo, 3)
        np.testing.assert_allclose(bcsd.to_dense(), small_coo.to_dense())


class TestValidation:
    def test_rejects_bad_block_size(self):
        with pytest.raises(FormatError):
            BCSDMatrix(4, 4, 0, np.array([0, 0]), np.empty(0), None, 0)

    def test_rejects_bad_bval_shape(self):
        with pytest.raises(FormatError):
            BCSDMatrix(
                4, 4, 2, np.array([0, 1, 1]), np.array([0]),
                np.zeros((1, 3)), nnz=1,
            )
