"""Tests for the structural statistics module."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.matrices import analyze, block_fill, diag_fill, run_lengths
from repro.matrices.generators import dense, grid2d


class TestRunLengths:
    def test_single_runs(self):
        coo = COOMatrix(2, 10, [0, 0, 0, 1, 1], [2, 3, 7, 0, 1],
                        np.ones(5))
        assert sorted(run_lengths(coo).tolist()) == [1, 2, 2]

    def test_empty(self):
        assert run_lengths(COOMatrix(3, 3, [], [], [])).size == 0

    def test_dense_row_single_run(self):
        coo = dense(1, 50)
        assert run_lengths(coo).tolist() == [50]


class TestFills:
    def test_dense_fill_is_one(self):
        coo = dense(16)
        assert block_fill(coo, 2, 2) == 1.0
        assert block_fill(coo, 4, 2) == 1.0

    def test_dense_diag_fill_edge_effect(self):
        """Edge diagonals of a dense matrix are partial, so the diagonal
        fill approaches 1 only as n grows."""
        assert diag_fill(dense(16), 4) == pytest.approx(64 / 76)
        assert diag_fill(dense(64), 4) > 0.94

    def test_diagonal_fill(self):
        n = 32
        coo = COOMatrix(n, n, np.arange(n), np.arange(n), None)
        assert diag_fill(coo, 4) == 1.0
        assert block_fill(coo, 2, 2) == 0.5  # two diag elems per 2x2 block

    def test_empty_matrix_fill(self):
        coo = COOMatrix(8, 8, [], [], None)
        assert block_fill(coo, 2, 2) == 1.0
        assert diag_fill(coo, 2) == 1.0


class TestAnalyze:
    def test_mesh_statistics(self):
        coo = grid2d(20, 20, 5)
        s = analyze(coo)
        assert s.nrows == s.ncols == 400
        assert s.row_max == 5
        assert s.row_min == 3
        assert s.empty_rows == 0
        assert s.bandwidth == 20
        assert 0 < s.density < 0.02

    def test_fem_blockability_visible(self):
        s = analyze(grid2d(10, 10, 5, dof=3))
        assert s.fill_3x3 == 1.0
        assert s.fill_2x2 < 1.0

    def test_empty_matrix(self):
        s = analyze(COOMatrix(4, 4, [], [], None))
        assert s.nnz == 0
        assert s.density == 0.0
        assert s.row_mean == 0.0
        assert s.empty_rows == 4
