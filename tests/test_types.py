"""Tests for repro.types."""

import numpy as np
import pytest

from repro.types import BlockShape, Impl, Precision


class TestPrecision:
    def test_itemsize(self):
        assert Precision.SP.itemsize == 4
        assert Precision.DP.itemsize == 8

    def test_dtype(self):
        assert Precision.SP.dtype == np.float32
        assert Precision.DP.dtype == np.float64

    @pytest.mark.parametrize("value,expected", [
        ("sp", Precision.SP),
        ("dp", Precision.DP),
        ("SP", Precision.SP),
        (Precision.DP, Precision.DP),
    ])
    def test_coerce(self, value, expected):
        assert Precision.coerce(value) is expected

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            Precision.coerce("half")

    def test_is_str_enum(self):
        assert Precision.SP == "sp"
        assert Precision.DP.value == "dp"


class TestImpl:
    def test_coerce(self):
        assert Impl.coerce("scalar") is Impl.SCALAR
        assert Impl.coerce("SIMD") is Impl.SIMD
        assert Impl.coerce(Impl.SCALAR) is Impl.SCALAR

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            Impl.coerce("avx512")


class TestBlockShape:
    def test_elems(self):
        assert BlockShape(2, 3).elems == 6
        assert BlockShape(1, 1).elems == 1

    def test_iter_unpacks(self):
        r, c = BlockShape(4, 2)
        assert (r, c) == (4, 2)

    def test_str(self):
        assert str(BlockShape(2, 4)) == "2x4"

    @pytest.mark.parametrize("r,c", [(0, 1), (1, 0), (-1, 2)])
    def test_rejects_nonpositive(self, r, c):
        with pytest.raises(ValueError):
            BlockShape(r, c)

    def test_ordering_and_hash(self):
        assert BlockShape(1, 2) < BlockShape(2, 2)
        assert len({BlockShape(2, 2), BlockShape(2, 2)}) == 1
