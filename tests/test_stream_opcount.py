"""Tests for the STREAM benchmark helpers and the op-count accounting."""

import numpy as np
import pytest

from repro.formats import build_format
from repro.kernels import OpCount, count_ops, useful_ops
from repro.machine import CORE2_XEON, measure_host_stream, simulated_stream

from .conftest import make_random_coo


class TestSimulatedStream:
    def test_reports_configured_bandwidth(self):
        res = simulated_stream(CORE2_XEON, n=4_000_000)
        assert res.bandwidth_bps == pytest.approx(
            CORE2_XEON.memory_bandwidth(1)
        )
        # The paper's quoted figure: 3.36 GiB/s.
        assert res.bandwidth_gib == pytest.approx(3.36)

    def test_small_arrays_hit_cache_bandwidth(self):
        res = simulated_stream(CORE2_XEON, n=20_000)  # 480 KB: L2-resident
        assert res.bandwidth_bps == pytest.approx(CORE2_XEON.l2.bandwidth_bps)

    def test_multithreaded_bandwidth(self):
        r1 = simulated_stream(CORE2_XEON, nthreads=1)
        r4 = simulated_stream(CORE2_XEON, nthreads=4)
        assert r4.bandwidth_bps > r1.bandwidth_bps

    def test_bytes_moved(self):
        res = simulated_stream(CORE2_XEON, n=1000)
        assert res.bytes_moved == 3 * 8 * 1000


class TestHostStream:
    def test_measures_something_positive(self):
        res = measure_host_stream(n=200_000, repeats=2)
        assert res.seconds > 0
        assert res.bandwidth_bps > 1e8  # any machine beats 100 MB/s

    def test_zero_seconds_guard(self):
        from repro.machine.stream import StreamResult

        assert StreamResult(bytes_moved=10, seconds=0.0).bandwidth_bps == 0.0


class TestOpCount:
    def test_csr_counts(self):
        coo = make_random_coo(30, 30, 200, seed=81)
        csr = build_format(coo, "csr")
        ops = count_ops(csr)
        assert ops.multiplies == coo.nnz
        assert ops.additions == coo.nnz
        assert ops.total == 2 * coo.nnz

    def test_padding_counted(self):
        coo = make_random_coo(30, 30, 120, seed=82)
        bcsr = build_format(coo, "bcsr", (2, 4))
        ops = count_ops(bcsr)
        assert ops.multiplies == bcsr.nnz_stored > coo.nnz

    def test_decomposed_pays_accumulate(self):
        from tests.test_decomposed import make_blocky_coo

        coo = make_blocky_coo()
        dec = build_format(coo, "bcsr_dec", (2, 2))
        assert len(dec.submatrices()) == 2
        ops = count_ops(dec)
        assert ops.additions == dec.nnz_stored + dec.nrows

    def test_useful_ops(self):
        coo = make_random_coo(30, 30, 120, seed=83)
        bcsr = build_format(coo, "bcsr", (2, 4))
        assert useful_ops(bcsr) == 2 * coo.nnz
        assert useful_ops(bcsr) < count_ops(bcsr).total

    def test_opcount_is_value_type(self):
        assert OpCount(1, 2) == OpCount(1, 2)
