"""Tests for the vectorized block-structure analysis."""

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.formats import COOMatrix, bcsd_block_stats, bcsr_block_stats
from repro.formats.blockstats import _unique_inverse_counts

from .conftest import make_random_coo


class TestUniqueInverseCounts:
    @pytest.mark.parametrize("assume_sorted", [False])
    def test_matches_numpy_unique(self, rng, assume_sorted):
        key = np.random.default_rng(1).integers(0, 50, 300)
        u, inv, cnt = _unique_inverse_counts(key, assume_sorted=assume_sorted)
        ru, rinv, rcnt = np.unique(key, return_inverse=True, return_counts=True)
        np.testing.assert_array_equal(u, ru)
        np.testing.assert_array_equal(inv, rinv)
        np.testing.assert_array_equal(cnt, rcnt)

    def test_sorted_fast_path_matches(self):
        key = np.sort(np.random.default_rng(2).integers(0, 40, 200))
        u, inv, cnt = _unique_inverse_counts(key, assume_sorted=True)
        ru, rinv, rcnt = np.unique(key, return_inverse=True, return_counts=True)
        np.testing.assert_array_equal(u, ru)
        np.testing.assert_array_equal(inv, rinv)
        np.testing.assert_array_equal(cnt, rcnt)

    def test_empty(self):
        u, inv, cnt = _unique_inverse_counts(
            np.empty(0, dtype=np.int64), assume_sorted=True
        )
        assert u.size == inv.size == cnt.size == 0


class TestBcsrStats:
    @pytest.mark.parametrize("r,c", [(1, 2), (2, 1), (2, 2), (3, 4), (1, 8)])
    def test_counts_sum_to_nnz(self, r, c):
        coo = make_random_coo(50, 70, 400, seed=41, with_values=False)
        stats = bcsr_block_stats(coo, r, c)
        assert int(stats.counts.sum()) == coo.nnz
        assert stats.nnz == coo.nnz
        assert stats.padding == stats.n_blocks * r * c - coo.nnz

    def test_block_assignment_consistent(self):
        coo = make_random_coo(40, 40, 250, seed=42, with_values=False)
        stats = bcsr_block_stats(coo, 2, 3)
        # Each nonzero's block must contain its coordinates.
        brow = stats.block_row[stats.nnz_block]
        bstart = stats.block_start_col[stats.nnz_block]
        assert np.all(coo.rows // 2 == brow)
        assert np.all((coo.cols >= bstart) & (coo.cols < bstart + 3))

    def test_offsets_unique_within_block(self):
        coo = make_random_coo(30, 30, 200, seed=43, with_values=False)
        stats = bcsr_block_stats(coo, 2, 2)
        combined = stats.nnz_block * 4 + stats.nnz_offset
        assert np.unique(combined).shape[0] == coo.nnz

    def test_blocks_in_row_major_order(self):
        coo = make_random_coo(30, 30, 200, seed=44, with_values=False)
        stats = bcsr_block_stats(coo, 3, 3)
        key = stats.block_row * 100 + stats.block_start_col
        assert np.all(np.diff(key) > 0)

    def test_full_mask(self):
        dense = np.ones((4, 4))
        dense[3, 3] = 0.0
        coo = COOMatrix.from_dense(dense)
        stats = bcsr_block_stats(coo, 2, 2)
        assert stats.full_mask().tolist() == [True, True, True, False]
        assert int(stats.nnz_in_full_block().sum()) == 12

    def test_rejects_bad_shape(self):
        coo = make_random_coo(10, 10, 20, seed=45, with_values=False)
        with pytest.raises(ConversionError):
            bcsr_block_stats(coo, 0, 2)


class TestBcsdStats:
    @pytest.mark.parametrize("b", [2, 3, 5, 8])
    def test_counts_sum_to_nnz(self, b):
        coo = make_random_coo(50, 50, 300, seed=46, with_values=False)
        stats = bcsd_block_stats(coo, b)
        assert int(stats.counts.sum()) == coo.nnz

    def test_diagonal_membership(self):
        coo = make_random_coo(40, 40, 200, seed=47, with_values=False)
        b = 4
        stats = bcsd_block_stats(coo, b)
        seg = stats.block_row[stats.nnz_block]
        j0 = stats.block_start_col[stats.nnz_block]
        t = stats.nnz_offset
        # Reconstruct every coordinate from its block and offset.
        np.testing.assert_array_equal(coo.rows, seg * b + t)
        np.testing.assert_array_equal(coo.cols, j0 + t)

    def test_pure_diagonal_matrix_perfect_fill(self):
        n = 24
        coo = COOMatrix(n, n, np.arange(n), np.arange(n), None)
        stats = bcsd_block_stats(coo, 4)
        assert stats.n_blocks == n // 4
        assert stats.padding == 0
        assert stats.full_mask().all()

    def test_off_diagonals_are_blocks(self):
        n = 12
        i = np.arange(n - 1)
        coo = COOMatrix(n, n, i, i + 1, None)  # superdiagonal
        stats = bcsd_block_stats(coo, 3)
        # Each segment contributes one diagonal block at j0 = seg*3 + 1.
        assert stats.n_blocks == 4
        np.testing.assert_array_equal(
            stats.block_start_col, np.arange(4) * 3 + 1
        )

    def test_rejects_bad_size(self):
        coo = make_random_coo(10, 10, 20, seed=48, with_values=False)
        with pytest.raises(ConversionError):
            bcsd_block_stats(coo, 0)
