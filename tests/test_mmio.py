"""Tests for Matrix Market I/O."""

import numpy as np
import pytest

from repro.errors import MatrixMarketError
from repro.formats import COOMatrix
from repro.matrices import read_matrix_market, write_matrix_market
from repro.matrices.mmio import read_matrix_market_text

from .conftest import make_random_coo


class TestRoundTrip:
    def test_real_general(self, tmp_path):
        coo = make_random_coo(12, 9, 40, seed=71)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, coo)
        back = read_matrix_market(path)
        assert back == coo

    def test_pattern(self, tmp_path):
        coo = make_random_coo(12, 9, 40, seed=72, with_values=False)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, coo)
        back = read_matrix_market(path)
        assert back == coo
        assert back.values is None

    def test_gzip(self, tmp_path):
        coo = make_random_coo(8, 8, 20, seed=73)
        path = tmp_path / "m.mtx.gz"
        write_matrix_market(path, coo)
        assert read_matrix_market(path) == coo

    def test_values_preserved_exactly(self, tmp_path):
        coo = COOMatrix(2, 2, [0, 1], [1, 0], [1.0 / 3.0, -2.5e-17])
        path = tmp_path / "m.mtx"
        write_matrix_market(path, coo)
        np.testing.assert_array_equal(read_matrix_market(path).values,
                                      coo.values)


class TestReading:
    def _write(self, tmp_path, text):
        p = tmp_path / "in.mtx"
        p.write_text(text)
        return p

    def test_symmetric_expansion(self, tmp_path):
        p = self._write(tmp_path, "\n".join([
            "%%MatrixMarket matrix coordinate real symmetric",
            "3 3 3",
            "1 1 2.0",
            "2 1 5.0",
            "3 2 7.0",
        ]))
        coo = read_matrix_market(p)
        dense = coo.to_dense()
        assert dense[0, 1] == dense[1, 0] == 5.0
        assert dense[1, 2] == dense[2, 1] == 7.0
        assert coo.nnz == 5  # diagonal entry not mirrored

    def test_skew_symmetric(self, tmp_path):
        p = self._write(tmp_path, "\n".join([
            "%%MatrixMarket matrix coordinate real skew-symmetric",
            "2 2 1",
            "2 1 3.0",
        ]))
        dense = read_matrix_market(p).to_dense()
        assert dense[1, 0] == 3.0
        assert dense[0, 1] == -3.0

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        p = self._write(tmp_path, "\n".join([
            "%%MatrixMarket matrix coordinate integer general",
            "% a comment",
            "",
            "2 2 1",
            "% another",
            "1 2 4",
        ]))
        coo = read_matrix_market(p)
        assert coo.to_dense()[0, 1] == 4.0

    def test_rejects_bad_header(self, tmp_path):
        p = self._write(tmp_path, "not a header\n1 1 0\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(p)

    def test_rejects_array_format(self, tmp_path):
        p = self._write(tmp_path,
                        "%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(p)

    def test_rejects_complex_field(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
        )
        with pytest.raises(MatrixMarketError):
            read_matrix_market(p)

    def test_rejects_truncated_file(self, tmp_path):
        p = self._write(tmp_path, "\n".join([
            "%%MatrixMarket matrix coordinate real general",
            "2 2 2",
            "1 1 1.0",
        ]))
        with pytest.raises(MatrixMarketError):
            read_matrix_market(p)

    def test_rejects_missing_value(self, tmp_path):
        p = self._write(tmp_path, "\n".join([
            "%%MatrixMarket matrix coordinate real general",
            "2 2 1",
            "1 1",
        ]))
        with pytest.raises(MatrixMarketError):
            read_matrix_market(p)

    def test_rejects_missing_size_line(self, tmp_path):
        p = self._write(tmp_path,
                        "%%MatrixMarket matrix coordinate real general\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(p)

    def test_symmetric_write_read_round_trip(self, tmp_path):
        """A symmetric pattern survives write -> read (the writer stores
        the expanded general form; the structure must be unchanged)."""
        sym = read_matrix_market_text("\n".join([
            "%%MatrixMarket matrix coordinate pattern symmetric",
            "4 4 4",
            "1 1",
            "3 1",
            "4 2",
            "4 4",
        ]))
        path = tmp_path / "sym.mtx"
        write_matrix_market(path, sym)
        assert read_matrix_market(path) == sym


class TestTextAPI:
    """read_matrix_market_text: the in-memory entry point the HTTP advisor
    uses for POSTed Matrix Market payloads."""

    def test_matches_file_reader(self, tmp_path):
        coo = make_random_coo(15, 11, 60, seed=81)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, coo)
        assert read_matrix_market_text(path.read_text()) == coo

    def test_pattern_round_trip(self, tmp_path):
        coo = make_random_coo(10, 10, 30, seed=82, with_values=False)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, coo)
        back = read_matrix_market_text(path.read_text())
        assert back == coo
        assert back.values is None

    def test_symmetric_expansion(self):
        coo = read_matrix_market_text("\n".join([
            "%%MatrixMarket matrix coordinate real symmetric",
            "3 3 2",
            "1 1 2.0",
            "3 1 5.0",
        ]))
        dense = coo.to_dense()
        assert dense[0, 2] == dense[2, 0] == 5.0
        assert coo.nnz == 3

    def test_malformed_header_raises(self):
        with pytest.raises(MatrixMarketError):
            read_matrix_market_text("not a header\n1 1 0\n")

    def test_source_label_in_error(self):
        with pytest.raises(MatrixMarketError, match="payload"):
            read_matrix_market_text("garbage\n", source="payload")

    def test_truncated_body_raises(self):
        with pytest.raises(MatrixMarketError):
            read_matrix_market_text("\n".join([
                "%%MatrixMarket matrix coordinate real general",
                "2 2 2",
                "1 1 1.0",
            ]))
