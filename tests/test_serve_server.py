"""Tests for the advisor HTTP endpoint (stdlib http.server)."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.matrices.mmio import write_matrix_market
from repro.serve.server import create_server
from repro.serve.service import AdvisorService

from .conftest import make_random_coo


@pytest.fixture()
def server(machine, shared_profile_cache, tmp_path):
    service = AdvisorService(
        machine, cache_dir=tmp_path, profile_cache=shared_profile_cache
    )
    srv = create_server(service, port=0)  # ephemeral port
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, body, path="/advise"):
    port = server.server_address[1]
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _mtx_text(seed=21):
    import tempfile
    from pathlib import Path

    coo = make_random_coo(96, 96, 700, seed=seed, with_values=False)
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "m.mtx"
        write_matrix_market(path, coo)
        return path.read_text()


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404
        status, _ = _post(server, {"suite": "dense"}, path="/nope")
        assert status == 404

    def test_stats_shape(self, server):
        status, stats = _get(server, "/stats")
        assert status == 200
        for key in (
            "requests", "cache_hits", "cache_misses", "errors",
            "timeouts", "mean_latency_s", "cache_entries", "machine",
        ):
            assert key in stats

    def test_stats_carries_worker_id(self, server):
        # Standalone servers report no worker id; fleet workers stamp
        # theirs so the balancer's fan-in can attribute each snapshot.
        _, stats = _get(server, "/stats")
        assert stats["worker_id"] is None


class TestReadyz:
    def test_ready_200(self, server):
        status, payload = _get(server, "/readyz")
        assert status == 200
        assert payload == {"status": "ready"}

    def test_draining_503(self, server):
        with server._state_lock:
            server._draining = True
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/readyz")
        assert err.value.code == 503
        assert json.loads(err.value.read())["status"] == "draining"
        # Liveness stays green while readiness is red.
        status, _ = _get(server, "/healthz")
        assert status == 200

    def test_warming_503_until_warmup_completes(self, server):
        server.service._warmup_done.clear()
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/readyz")
        assert err.value.code == 503
        assert json.loads(err.value.read())["status"] == "warming"
        server.service._warmup_done.set()
        status, _ = _get(server, "/readyz")
        assert status == 200

    def test_warmup_pass_flips_readiness(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = AdvisorService(
            machine, cache_dir=tmp_path, profile_cache=shared_profile_cache
        )
        assert service.warmed_up  # born ready with no warmup requested
        service.warmup()  # profile already cached: completes immediately
        assert service.warmed_up

    def test_worker_id_in_service_stats(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = AdvisorService(
            machine,
            cache_dir=tmp_path,
            profile_cache=shared_profile_cache,
            worker_id=3,
        )
        assert service.stats()["worker_id"] == 3


class TestAdviseEndpoint:
    def test_concurrent_posts_then_cache_hit(self, server):
        """Acceptance: two concurrent POST /advise threads both get valid
        JSON; an identical repeat is a cache hit, visible in /stats."""
        body = {"matrix_market": _mtx_text(), "top": 2}
        results = [None, None]

        def worker(i):
            results[i] = _post(server, body)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        for status, payload in results:
            assert status == 200
            assert payload["best"]["label"]
            assert len(payload["ranking"]) <= 2
            assert payload["nnz"] > 0

        status, payload = _post(server, body)
        assert status == 200
        assert payload["cache_hit"]

        _, stats = _get(server, "/stats")
        assert stats["requests"] == 3
        assert stats["cache_hits"] >= 1
        assert stats["cache_hits"] + stats["cache_misses"] == 3

    def test_suite_entry_by_name(self, server):
        status, payload = _post(server, {"suite": "pwtk", "top": 1})
        assert status == 200
        assert payload["best"]["label"] == "BCSR 6x1 simd"
        assert len(payload["ranking"]) == 1

    def test_model_option_respected(self, server):
        status, payload = _post(
            server, {"suite": "pwtk", "model": "mem", "top": 1}
        )
        assert status == 200
        assert payload["options"]["model"] == "mem"
        assert payload["best"]["impl"] == "scalar"

    def test_unknown_suite_400(self, server):
        status, payload = _post(server, {"suite": "no-such-matrix"})
        assert status == 400
        assert "no-such-matrix" in payload["error"]

    def test_missing_matrix_key_400(self, server):
        status, payload = _post(server, {"top": 3})
        assert status == 400
        assert "suite" in payload["error"]

    def test_invalid_json_400(self, server):
        status, payload = _post(server, b"{not json")
        assert status == 400
        assert "JSON" in payload["error"]

    def test_malformed_matrix_market_400(self, server):
        status, payload = _post(server, {"matrix_market": "not a header\n"})
        assert status == 400
        assert "error" in payload

    def test_empty_body_400(self, server):
        status, payload = _post(server, b"")
        assert status == 400


def _raw_request(server, request_bytes):
    """Send raw bytes and return the full response (for broken framing)."""
    port = server.server_address[1]
    chunks = []
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(request_bytes)
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestErrorMatrix:
    """The full error-path contract: every malformed request gets a JSON
    error with the right status, and the connection survives to serve the
    next client (see also TestServerChaos in test_resilience.py for the
    503/504/500 injected-failure statuses)."""

    def test_non_dict_body_400(self, server):
        status, payload = _post(server, b"[1, 2, 3]")
        assert status == 400
        assert "JSON object" in payload["error"]

    def test_unparseable_content_length_400(self, server):
        response = _raw_request(
            server,
            b"POST /advise HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Length: banana\r\n"
            b"Connection: close\r\n\r\n",
        )
        assert response.split(b"\r\n", 1)[0].endswith(b"400 Bad Request")
        assert b"bad Content-Length" in response

    def test_oversized_declared_body_413_without_reading_it(self, server):
        # The length check runs before any body read: a 10 GiB claim is
        # rejected from the header alone.
        response = _raw_request(
            server,
            b"POST /advise HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Length: 10737418240\r\n"
            b"Connection: close\r\n\r\n",
        )
        first_line = response.split(b"\r\n", 1)[0]
        assert b"413" in first_line
        assert b"exceeds" in response

    def test_default_body_limit_is_8mib(self):
        from repro.serve.server import DEFAULT_MAX_BODY_BYTES, MAX_BODY_BYTES

        assert DEFAULT_MAX_BODY_BYTES == 8 * 1024 * 1024
        assert MAX_BODY_BYTES == DEFAULT_MAX_BODY_BYTES

    def test_server_survives_the_whole_matrix(self, server):
        for body in (b"", b"{not json", b"[1]", json.dumps({"top": 1}).encode()):
            status, _ = _post(server, body)
            assert status == 400
        status, _ = _post(server, {"suite": "no-such-matrix"})
        assert status == 400
        status, payload = _post(server, {"suite": "dense", "top": 1})
        assert status == 200
        assert payload["best"]["label"]
