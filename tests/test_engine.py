"""Tests for the sweep execution engine (repro.engine).

Fault-injection and resume tests drive the engine with stub task
functions (no real sweeping), so they exercise the orchestration — retry,
quarantine, shard persistence, event stream — in milliseconds.  The
determinism test at the end runs the real thing: a 3-matrix suite subset
through a 4-worker pool must be record-for-record identical to the serial
sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import (
    MatrixSweep,
    SweepConfig,
    SweepRecord,
    load_or_run_sweep,
    run_sweep,
)
from repro.engine import (
    CollectingReporter,
    JsonlReporter,
    ShardStore,
    SweepEngine,
    plan_shards,
    run_sweep_engine,
)

#: Tiny real-suite subset: dense (fastest builder), pwtk, stomach.
SUBSET = (1, 27, 30)

#: Stub configs never execute a real sweep; the indices just pick names.
STUB_CONFIG = SweepConfig(suite_indices=SUBSET)


def stub_matrix(shard_id: int, name: str = "stub") -> MatrixSweep:
    return MatrixSweep(
        idx=shard_id, name=name, domain="test", geometry=False,
        special=False, nrows=4, ncols=4, nnz=8,
        records=[SweepRecord(
            kind="csr", block=None, impl="scalar", precision="dp",
            nthreads=1, t_real=1.0 * shard_id, t_mem=0.8, t_comp=0.3,
            t_latency=0.0, ws_bytes=64, padding_ratio=1.0, n_blocks=1,
        )],
    )


def stub_task(task) -> MatrixSweep:
    return stub_matrix(task.shard_id, task.name)


class TestPlanning:
    def test_one_shard_per_suite_entry(self):
        tasks = plan_shards(STUB_CONFIG)
        assert [t.shard_id for t in tasks] == list(SUBSET)
        assert tasks[0].name == "dense"
        assert all(t.config is STUB_CONFIG for t in tasks)

    def test_full_suite_default(self):
        assert len(plan_shards(SweepConfig())) == 30


class TestShardStore:
    def test_roundtrip(self, tmp_path):
        store = ShardStore(tmp_path, STUB_CONFIG)
        store.save(27, stub_matrix(27), elapsed_s=1.5)
        loaded = store.load(27)
        assert loaded is not None
        assert loaded.idx == 27
        assert loaded.records[0].t_real == 27.0
        assert store.completed_ids() == [27]

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = ShardStore(tmp_path, STUB_CONFIG)
        store.save(1, stub_matrix(1))
        assert [p.name for p in store.root.glob("*.tmp")] == []

    def test_corrupt_shard_discarded(self, tmp_path):
        store = ShardStore(tmp_path, STUB_CONFIG)
        store.save(1, stub_matrix(1))
        store.shard_path(1).write_text('{"schema": 1, "trunc')
        assert store.load(1) is None
        assert not store.shard_path(1).exists()

    def test_foreign_fingerprint_ignored(self, tmp_path):
        store = ShardStore(tmp_path, STUB_CONFIG)
        store.save(1, stub_matrix(1))
        other = ShardStore(tmp_path, SweepConfig(suite_indices=(1,)))
        # Different config -> different directory, so nothing to load.
        assert other.load(1) is None

    def test_quarantine_markers(self, tmp_path):
        store = ShardStore(tmp_path, STUB_CONFIG)
        store.quarantine(27, error="boom", attempts=3)
        assert store.quarantined_ids() == [27]
        store.clear_quarantine(27)
        assert store.quarantined_ids() == []


class TestFaultInjection:
    def test_retry_then_success(self, tmp_path):
        calls = {"n": 0}

        def flaky(task):
            if task.shard_id == 27:
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise RuntimeError(f"transient #{calls['n']}")
            return stub_task(task)

        col = CollectingReporter()
        result = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, max_retries=2,
            backoff_base_s=0.0, task_fn=flaky, reporters=[col],
        ).run()
        assert result.missing == []
        assert [m.idx for m in result.matrices] == list(SUBSET)
        retries = col.of("shard_retry")
        assert [e["shard"] for e in retries] == [27, 27]
        assert [e["attempt"] for e in retries] == [2, 3]
        # The successful attempt is recorded as attempt 3.
        finish = [e for e in col.of("shard_finish") if e["shard"] == 27]
        assert finish[0]["attempt"] == 3

    def test_quarantine_yields_partial_result(self, tmp_path):
        def broken(task):
            if task.shard_id == 27:
                raise RuntimeError("permanent")
            return stub_task(task)

        col = CollectingReporter()
        result = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, max_retries=1,
            backoff_base_s=0.0, task_fn=broken, reporters=[col],
        ).run()
        assert result.missing == [27]
        assert [m.idx for m in result.matrices] == [1, 30]
        with pytest.raises(KeyError):
            result.matrix(27)
        quarantined = col.of("shard_quarantined")
        assert len(quarantined) == 1
        assert quarantined[0]["attempts"] == 2  # 1 try + 1 retry
        assert "permanent" in quarantined[0]["error"]
        # Exception type and message travel separately, so the run log
        # alone is enough to diagnose the shard.
        assert quarantined[0]["error_type"] == "RuntimeError"
        assert all(
            e["error_type"] == "RuntimeError" for e in col.of("shard_retry")
        )
        store = ShardStore(tmp_path, STUB_CONFIG)
        assert store.quarantined_ids() == [27]
        from repro.ioutils import read_envelope

        marker = read_envelope(store.quarantine_path(27))
        assert marker["error_type"] == "RuntimeError"
        assert marker["error"] == "permanent"

    def test_quarantined_shard_recovers_on_rerun(self, tmp_path):
        def broken(task):
            raise RuntimeError("always")

        SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, max_retries=0,
            backoff_base_s=0.0, task_fn=broken,
        ).run()
        store = ShardStore(tmp_path, STUB_CONFIG)
        assert store.quarantined_ids() == list(SUBSET)

        result = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1,
            backoff_base_s=0.0, task_fn=stub_task,
        ).run()
        assert result.missing == []
        assert store.quarantined_ids() == []

    def test_backoff_is_bounded(self, tmp_path):
        engine = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path,
            backoff_base_s=0.5, backoff_cap_s=2.0,
        )
        backoffs = [engine._backoff(attempt) for attempt in (2, 3, 4, 5, 6)]
        assert backoffs == [0.5, 1.0, 2.0, 2.0, 2.0]


class TestResume:
    def test_resume_recomputes_only_missing_shards(self, tmp_path):
        # First run dies on shard 27: two shards persist, one is missing.
        def dies_on_27(task):
            if task.shard_id == 27:
                raise RuntimeError("killed")
            return stub_task(task)

        first = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, max_retries=0,
            backoff_base_s=0.0, task_fn=dies_on_27,
        ).run()
        assert first.missing == [27]

        # Second run resumes: the run log shows 1 and 30 served from the
        # shard cache and only 27 actually executed.
        col = CollectingReporter()
        second = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1,
            backoff_base_s=0.0, task_fn=stub_task, reporters=[col],
        ).run()
        assert second.missing == []
        assert [m.idx for m in second.matrices] == list(SUBSET)
        assert sorted(e["shard"] for e in col.of("shard_cached")) == [1, 30]
        assert [e["shard"] for e in col.of("shard_start")] == [27]
        assert [e["shard"] for e in col.of("shard_finish")] == [27]
        start = col.of("sweep_start")[0]
        assert start["cached"] == 2 and start["n_shards"] == 3

    def test_fresh_discards_shards(self, tmp_path):
        SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
        ).run()
        col = CollectingReporter()
        SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, resume=False,
            task_fn=stub_task, reporters=[col],
        ).run()
        assert col.of("shard_cached") == []
        assert len(col.of("shard_finish")) == 3

    def test_corrupt_shard_recomputed_on_resume(self, tmp_path):
        SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
        ).run()
        store = ShardStore(tmp_path, STUB_CONFIG)
        store.shard_path(30).write_text("not json at all")
        col = CollectingReporter()
        result = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
            reporters=[col],
        ).run()
        assert result.missing == []
        assert [e["shard"] for e in col.of("shard_finish")] == [30]


class TestEvents:
    def test_jsonl_reporter_round_trips(self, tmp_path):
        log = tmp_path / "run.jsonl"
        reporter = JsonlReporter(log)
        SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
            reporters=[reporter],
        ).run()
        reporter.close()
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_finish"
        assert kinds.count("shard_finish") == 3
        assert all("ts" in e for e in events)

    def test_sweep_finish_metrics(self, tmp_path):
        col = CollectingReporter()
        run_sweep_engine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
            reporters=[col],
        )
        finish = col.of("sweep_finish")[0]
        assert finish["completed"] == 3
        assert finish["records"] == 3
        assert finish["quarantined"] == 0
        assert finish["shards_per_s"] > 0
        assert 0.0 <= finish["worker_utilization"] <= 1.0

    def test_invalid_jobs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepEngine(STUB_CONFIG, cache_dir=tmp_path, jobs=0)


class TestPoolPath:
    """The ProcessPoolExecutor path with a picklable stub task."""

    def test_pool_runs_and_persists(self, tmp_path):
        col = CollectingReporter()
        result = SweepEngine(
            STUB_CONFIG, cache_dir=tmp_path, jobs=2, task_fn=stub_task,
            reporters=[col],
        ).run()
        assert result.missing == []
        # Assembly is in suite order no matter the completion order.
        assert [m.idx for m in result.matrices] == list(SUBSET)
        assert ShardStore(tmp_path, STUB_CONFIG).completed_ids() == [1, 27, 30]
        assert len(col.of("shard_finish")) == 3


@pytest.mark.slow
class TestKillResume:
    """Acceptance: kill a sweep after ≥1 shard completes, re-run with
    --resume, and the run log shows only the missing shards recomputed."""

    def test_killed_sweep_resumes_from_shards(self, tmp_path):
        repo_root = Path(__file__).resolve().parent.parent
        env = {**os.environ,
               "PYTHONPATH": str(repo_root / "src")
               + os.pathsep + os.environ.get("PYTHONPATH", "")}
        base = [
            sys.executable, "-m", "repro", "sweep", "--jobs", "1",
            "--matrices", "1,27,30", "--precisions", "dp", "--threads", "1",
            "--cache-dir", str(tmp_path),
        ]

        def finished_shards(log):
            if not log.exists():
                return set()
            done = set()
            for line in log.read_text().splitlines():
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:  # torn final line after kill
                    continue
                if event["event"] == "shard_finish":
                    done.add(event["shard"])
            return done

        # Kill the first sweep as soon as one shard has been persisted.
        log1 = tmp_path / "run1.jsonl"
        proc = subprocess.Popen(
            [*base, "--run-log", str(log1)], cwd=repo_root, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 300
            while not finished_shards(log1):
                if proc.poll() is not None or time.monotonic() > deadline:
                    break
                time.sleep(0.2)
        finally:
            proc.kill()
            proc.wait()
        done = finished_shards(log1)
        assert done, "no shard completed before the kill"
        config = SweepConfig(
            suite_indices=SUBSET, precisions=("dp",), thread_counts=(1,)
        )
        monolithic = tmp_path / f"sweep_{config.fingerprint()}.json"
        if proc.returncode == 0:
            # The sweep outran the kill (fast machine): drop the assembled
            # cache so the second run still exercises shard-level resume.
            monolithic.unlink(missing_ok=True)
        else:
            assert not monolithic.exists(), (
                "monolithic cache must not exist after a kill"
            )

        # Re-run with --resume (the default): completed shards are served
        # from the store, only the missing ones execute.
        log2 = tmp_path / "run2.jsonl"
        proc2 = subprocess.run(
            [*base, "--resume", "--run-log", str(log2)],
            cwd=repo_root, env=env, capture_output=True, text=True,
            timeout=600,
        )
        assert proc2.returncode == 0, proc2.stderr
        assert "sweep ready: 3 matrices" in proc2.stdout
        events = [json.loads(l) for l in log2.read_text().splitlines()]
        cached = {e["shard"] for e in events if e["event"] == "shard_cached"}
        recomputed = {
            e["shard"] for e in events if e["event"] == "shard_finish"
        }
        assert cached == done
        assert recomputed == set(SUBSET) - done


@pytest.mark.slow
class TestDeterminism:
    """Acceptance: jobs=4 output is byte-identical to the serial sweep."""

    CONFIG = SweepConfig(
        precisions=("dp",), thread_counts=(1,), max_block_elems=4,
        suite_indices=SUBSET,
    )

    def test_parallel_sweep_matches_serial(self, tmp_path):
        serial = run_sweep(config=self.CONFIG)
        parallel = load_or_run_sweep(
            self.CONFIG, cache_dir=tmp_path, jobs=4,
            run_log=tmp_path / "run.jsonl",
        )
        assert parallel.missing == []
        assert parallel.canonical_json() == serial.canonical_json()
        # All three shards really went through the pool.
        events = [
            json.loads(line)
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        finished = sorted(
            e["shard"] for e in events if e["event"] == "shard_finish"
        )
        assert finished == list(SUBSET)
