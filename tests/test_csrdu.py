"""Tests for the CSR-DU delta-unit compressed format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import COOMatrix, CSRDUMatrix, build_format
from repro.machine import CORE2_XEON, simulate
from repro.matrices.generators import grid2d, random_uniform

from .conftest import make_random_coo


class TestEncoding:
    def test_single_row_run(self):
        coo = COOMatrix(1, 100, [0, 0, 0], [10, 11, 12], [1.0, 2.0, 3.0])
        du = CSRDUMatrix.from_coo(coo)
        assert du.n_units == 1
        # flags | count | skip(2) | base(4) | 2 deltas @ 1B
        assert du.index_bytes() == 2 + 2 + 4 + 2
        np.testing.assert_array_equal(du.decode_columns(), [10, 11, 12])

    def test_width_escalation(self):
        coo = COOMatrix(1, 100_000, [0, 0, 0], [0, 10, 70_000],
                        [1.0, 1.0, 1.0])
        du = CSRDUMatrix.from_coo(coo)
        # delta 10 fits 1B; delta 69990 needs 4B -> two units.
        assert du.n_units == 2
        np.testing.assert_array_equal(du.decode_columns(), [0, 10, 70_000])

    def test_row_skip_encoded(self):
        coo = COOMatrix(100, 10, [0, 50], [1, 2], [1.0, 2.0])
        du = CSRDUMatrix.from_coo(coo)
        assert du.n_units == 2
        np.testing.assert_array_equal(du.unit_row, [0, 50])

    def test_unit_split_at_255(self):
        n = 600
        coo = COOMatrix(1, 2 * n, np.zeros(n, dtype=int),
                        np.arange(n) * 2, np.ones(n))
        du = CSRDUMatrix.from_coo(coo)
        assert du.n_units == 3  # 255 + 255 + 90
        assert int(du.unit_count.max()) <= 255

    def test_empty_matrix(self):
        du = CSRDUMatrix.from_coo(COOMatrix(4, 4, [], [], []))
        assert du.index_bytes() == 0
        np.testing.assert_array_equal(du.spmv(np.ones(4)), np.zeros(4))

    def test_compresses_banded_matrices(self):
        mesh = grid2d(50, 50, 9)
        du = build_format(mesh, "csr_du", with_values=False)
        assert du.compression_ratio() > 1.8  # small deltas -> 1-byte units

    def test_weak_compression_on_scattered(self):
        coo = random_uniform(50_000, 50_000, 100_000, seed=3)
        du = build_format(coo, "csr_du", with_values=False)
        # Huge random deltas need 4 bytes; headers still help a little
        # against CSR's 4B + row_ptr, but the ratio collapses toward ~1.
        assert du.compression_ratio() < 1.6


class TestSpmv:
    def test_matches_dense(self, small_coo, small_x):
        du = CSRDUMatrix.from_coo(small_coo)
        np.testing.assert_allclose(
            du.spmv(small_x), small_coo.to_dense() @ small_x
        )

    def test_structure_only_rejected(self, small_coo):
        du = CSRDUMatrix.from_coo(small_coo, with_values=False)
        with pytest.raises(FormatError):
            du.spmv(np.ones(small_coo.ncols))

    @given(
        seed=st.integers(0, 5000),
        n=st.integers(1, 60),
        m=st.integers(1, 200_000),
        nnz=st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, seed, n, m, nnz):
        rng = np.random.default_rng(seed)
        coo = COOMatrix(
            n, m, rng.integers(0, n, nnz), rng.integers(0, m, nnz),
            rng.uniform(0.5, 2.0, nnz),
        )
        du = CSRDUMatrix.from_coo(coo)
        assert du.to_coo() == coo
        x = rng.standard_normal(m)
        expected = np.zeros(n)
        np.add.at(expected, coo.rows, coo.values * x[coo.cols])
        np.testing.assert_allclose(du.spmv(x), expected, rtol=1e-9, atol=1e-9)


class TestIntegration:
    def test_registry_and_display(self, small_coo):
        du = build_format(small_coo, "csr_du")
        assert du.kind == "csr_du"
        from repro.formats import display_name

        assert display_name("csr_du") == "CSR-DU"

    def test_ws_beats_csr_on_banded(self):
        mesh = grid2d(60, 60, 5)
        du = build_format(mesh, "csr_du", with_values=False)
        csr = build_format(mesh, "csr", with_values=False)
        assert du.working_set("dp") < csr.working_set("dp")

    def test_simulates(self, machine):
        mesh = grid2d(120, 120, 9, dof=2)
        du = build_format(mesh, "csr_du", with_values=False)
        csr = build_format(mesh, "csr", with_values=False)
        t_du = simulate(du, machine, "dp", "scalar").t_total
        t_csr = simulate(csr, machine, "dp", "scalar").t_total
        # Less memory, more decode compute: both positive and same scale.
        assert 0.3 < t_du / t_csr < 2.0

    def test_diagonal_and_dense(self, small_coo):
        du = build_format(small_coo, "csr_du")
        np.testing.assert_allclose(du.to_dense(), small_coo.to_dense())
        np.testing.assert_allclose(
            du.diagonal(), np.diagonal(small_coo.to_dense())
        )

    def test_mem_model_applies(self, small_coo, machine):
        """MEM covers any format, including the compressed one."""
        from repro.core.models import MemModel

        du = build_format(small_coo, "csr_du", with_values=False)
        pred = MemModel().predict(du, machine, "dp")
        assert pred == pytest.approx(
            du.working_set("dp") / machine.memory_bandwidth(1)
        )
