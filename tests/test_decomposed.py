"""Tests for the decomposed formats (BCSR-DEC, BCSD-DEC)."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSRMatrix,
    bcsr_block_stats,
    decompose_bcsd,
    decompose_bcsr,
)

from .conftest import make_random_coo


def make_blocky_coo(seed: int = 17) -> COOMatrix:
    """A 64x64 matrix mixing guaranteed-dense 2x2 blocks with random noise."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((64, 64))
    # Plant 40 aligned, fully dense 2x2 tiles.
    for _ in range(40):
        i, j = 2 * rng.integers(0, 32, 2)
        dense[i : i + 2, j : j + 2] = rng.standard_normal((2, 2)) + 3.0
    # Sprinkle isolated entries that can never complete a block.
    for _ in range(120):
        i, j = rng.integers(0, 64, 2)
        dense[i, j] = rng.standard_normal() + 3.0
    return COOMatrix.from_dense(dense)


class TestDecomposeBcsr:
    def test_padding_free(self, small_coo):
        dec = decompose_bcsr(small_coo, (2, 2))
        assert dec.padding == 0
        assert dec.padding_ratio == 1.0

    def test_parts_partition_nnz(self, small_coo):
        dec = decompose_bcsr(small_coo, (2, 2))
        assert sum(p.nnz for p in dec.parts) == small_coo.nnz

    def test_blocked_part_has_only_full_blocks(self):
        dec = decompose_bcsr(make_blocky_coo(), (2, 2))
        blocked = dec.parts[0]
        assert blocked.kind == "bcsr"
        assert blocked.nnz == blocked.nnz_stored

    def test_spmv_matches_reference(self, small_coo, small_x):
        for block in [(1, 2), (2, 2), (2, 3), (4, 2)]:
            dec = decompose_bcsr(small_coo, block)
            np.testing.assert_allclose(
                dec.spmv(small_x), small_coo.to_dense() @ small_x
            )

    def test_matches_slow_path(self, small_coo):
        """The stats-reusing fast path equals an independent reconstruction."""
        stats = bcsr_block_stats(small_coo, 2, 3)
        fast = decompose_bcsr(small_coo, (2, 3), stats=stats)
        slow = decompose_bcsr(small_coo, (2, 3))
        np.testing.assert_allclose(fast.to_dense(), slow.to_dense())

    def test_no_full_blocks_degenerates_to_csr(self):
        coo = COOMatrix(8, 8, [0, 2, 4], [0, 3, 7], [1.0, 2.0, 3.0])
        dec = decompose_bcsr(coo, (2, 2))
        assert len(dec.parts) == 1
        assert dec.parts[0].kind == "csr"
        assert dec.parts[0].nnz == 3

    def test_all_full_blocks_no_remainder(self):
        dense = np.arange(1.0, 17.0).reshape(4, 4)
        dec = decompose_bcsr(COOMatrix.from_dense(dense), (2, 2))
        assert len(dec.parts) == 1
        assert dec.parts[0].kind == "bcsr"

    def test_empty_matrix(self):
        dec = decompose_bcsr(COOMatrix(4, 4, [], [], []), (2, 2))
        assert dec.nnz == 0
        assert len(dec.parts) == 1  # a (degenerate) CSR remainder

    def test_kind_and_display(self, small_coo):
        dec = decompose_bcsr(small_coo, (2, 2))
        assert dec.kind == "bcsr_dec"
        assert dec.display_name == "BCSR-DEC"


class TestDecomposeBcsd:
    @pytest.mark.parametrize("b", [2, 3, 4, 8])
    def test_spmv_matches_reference(self, b, small_coo, small_x):
        dec = decompose_bcsd(small_coo, b)
        np.testing.assert_allclose(
            dec.spmv(small_x), small_coo.to_dense() @ small_x
        )

    def test_padding_free(self, small_coo):
        assert decompose_bcsd(small_coo, 4).padding == 0

    def test_blocked_part_diagonals_full(self):
        # Build a matrix with one guaranteed full diagonal block.
        coo = COOMatrix(
            4, 4, [0, 1, 2, 3, 0], [0, 1, 2, 3, 3], [1, 2, 3, 4, 9.0]
        )
        dec = decompose_bcsd(coo, 4)
        blocked = dec.parts[0]
        assert blocked.kind == "bcsd"
        assert blocked.nnz == 4  # the main diagonal
        rest = dec.parts[1]
        assert rest.nnz == 1

    def test_full_blocks_never_cross_edges(self, small_coo):
        dec = decompose_bcsd(small_coo, 5)
        if dec.parts[0].kind == "bcsd":
            blocked = dec.parts[0]
            assert (blocked.bcol_ind >= 0).all()
            assert (blocked.bcol_ind + blocked.b <= blocked.ncols).all()


class TestAccounting:
    def test_working_set_charges_vectors_per_pass(self):
        coo = make_blocky_coo()
        dec = decompose_bcsr(coo, (2, 2))
        assert len(dec.parts) == 2
        e = 8
        per_pass_vectors = e * (coo.ncols + coo.nrows)
        y_reread = 8 * coo.nrows  # pass 2 reads y back to accumulate
        expected = sum(
            p.working_set_matrix_only("dp") for p in dec.parts
        ) + 2 * per_pass_vectors + y_reread
        assert dec.working_set("dp") == expected

    def test_index_bytes_sum_of_parts(self, small_coo):
        dec = decompose_bcsr(small_coo, (2, 2))
        assert dec.index_bytes() == sum(p.index_bytes() for p in dec.parts)

    def test_n_blocks_sum(self, small_coo):
        dec = decompose_bcsd(small_coo, 3)
        assert dec.n_blocks == sum(p.n_blocks for p in dec.parts)

    def test_submatrices_exposed(self, small_coo):
        dec = decompose_bcsr(small_coo, (2, 2))
        assert dec.submatrices() == dec.parts

    def test_remainder_has_short_rows(self):
        """The paper notes the CSR remainder has very short rows — check the
        remainder is sparser per row than the original."""
        coo = make_blocky_coo()
        dec = decompose_bcsr(coo, (2, 2))
        rest = dec.parts[-1]
        assert isinstance(rest, CSRMatrix)
        assert rest.nnz < coo.nnz
