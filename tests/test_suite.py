"""Tests for the 30-matrix suite definition (builds only a few entries)."""

import pytest

from repro.formats import CSRMatrix
from repro.matrices import SUITE, entry_names, get_entry


class TestSuiteMetadata:
    def test_thirty_entries(self):
        assert len(SUITE) == 30
        assert [e.idx for e in SUITE] == list(range(1, 31))

    def test_names_unique(self):
        names = entry_names()
        assert len(set(names)) == 30

    def test_specials_are_first_two(self):
        assert SUITE[0].special and SUITE[0].name == "dense"
        assert SUITE[1].special and SUITE[1].name == "random"
        assert not any(e.special for e in SUITE[2:])

    def test_geometry_split_matches_paper(self):
        """#3-#16 without 2D/3D geometry, #17-#30 with."""
        for e in SUITE:
            if 3 <= e.idx <= 16:
                assert not e.geometry, e.name
            elif e.idx >= 17:
                assert e.geometry, e.name

    def test_paper_metadata_present(self):
        for e in SUITE:
            assert e.paper_rows > 0
            assert e.paper_nnz > 0
            assert e.paper_ws_mib > 0

    def test_get_entry_by_name_and_idx(self):
        assert get_entry("pwtk").idx == 27
        assert get_entry(27).name == "pwtk"
        with pytest.raises(KeyError):
            get_entry("does-not-exist")


class TestSuiteBuilds:
    """Build a representative subset (full builds are exercised by the
    sweep harness and Table I bench)."""

    @pytest.mark.parametrize("name", ["dense", "fdiff", "pwtk", "stomach"])
    def test_builds_and_exceeds_cache(self, name):
        entry = get_entry(name)
        coo = entry.build()
        ws = CSRMatrix.from_coo(coo, with_values=False).working_set("sp")
        assert ws > 4 * 2**20  # larger than the simulated L2

    def test_deterministic_rebuild(self):
        a = get_entry("stomach").build()
        b = get_entry("stomach").build()
        assert a.nnz == b.nnz
        assert (a.rows[:100] == b.rows[:100]).all()

    def test_structural_classes(self):
        from repro.matrices import block_fill, diag_fill

        fdiff = get_entry("fdiff").build()
        assert diag_fill(fdiff, 4) > 0.9  # pure diagonals: BCSD territory

        pwtk = get_entry("pwtk").build()
        assert block_fill(pwtk, 6, 6) == 1.0  # 6-dof node blocks

        random = get_entry("random").build()
        assert block_fill(random, 2, 2) < 0.3
