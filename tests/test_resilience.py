"""Chaos suite: seeded fault injection and the hardening it verifies.

Unit-tests the :mod:`repro.resilience` primitives (fault plans, deadlines,
the circuit breaker) with fake clocks, then drives the real advisor
service, HTTP server, and sweep engine under installed fault plans:
mid-write crashes must leave no partial cache entry, breaker-open serving
must degrade instead of failing, over-budget requests must 504, overload
must shed with a 503, and a drain must finish in-flight work.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.bench.harness import SweepConfig
from repro.engine import CollectingReporter, SweepEngine
from repro.errors import DeadlineExceededError, ServiceUnavailableError
from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    FaultInjectedError,
    FaultPlan,
    FaultRule,
    current_plan,
    fault_point,
    install_plan_from_env,
    installed,
    load_plan_spec,
    uninstall_plan,
)
from repro.serve.server import create_server
from repro.serve.service import AdvisorService

from .conftest import make_random_coo
from .test_engine import STUB_CONFIG, SUBSET, stub_task


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """Every test starts and must end with no globally installed plan."""
    uninstall_plan()
    yield
    assert current_plan() is None, "test leaked an installed FaultPlan"
    uninstall_plan()


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# --------------------------------------------------------------------------- #
# FaultRule / FaultPlan units
# --------------------------------------------------------------------------- #


class TestFaultRule:
    @pytest.mark.parametrize("kwargs,needle", [
        (dict(site="no.such.site", action="raise"), "unknown fault site"),
        (dict(site="serve.store.save", action="explode"), "unknown fault action"),
        (dict(site="serve.store.save", action="raise", nth=1, probability=0.5),
         "not both"),
        (dict(site="serve.store.save", action="raise", nth=0), "1-based"),
        (dict(site="serve.store.save", action="raise", probability=1.5),
         "probability"),
        (dict(site="serve.store.save", action="raise", error="KeyboardInterrupt"),
         "unknown error class"),
    ])
    def test_validation(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            FaultRule(**kwargs)

    def test_payload_round_trip(self):
        rule = FaultRule(
            site="serve.store.save", action="raise", nth=3, times=2,
            error="OSError", message="disk gone",
        )
        again = FaultRule.from_payload(rule.to_payload())
        assert again == rule

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-rule key"):
            FaultRule.from_payload(
                {"site": "serve.store.save", "action": "raise", "sit": 1}
            )

    def test_error_class(self):
        rule = FaultRule(site="serve.store.save", action="raise", error="OSError")
        exc = rule.exception()
        assert isinstance(exc, OSError)
        assert "serve.store.save" in str(exc)


class TestFaultPlan:
    def test_no_plan_is_a_pure_passthrough(self):
        assert current_plan() is None
        assert fault_point("serve.store.save", "data") == "data"
        assert fault_point("serve.store.save") is None

    def test_nth_fires_on_exactly_that_hit(self):
        plan = FaultPlan(
            [FaultRule(site="serve.store.save", action="raise", nth=2)]
        )
        assert plan.apply("serve.store.save", "a") == "a"
        with pytest.raises(FaultInjectedError):
            plan.apply("serve.store.save")
        assert plan.apply("serve.store.save", "c") == "c"
        assert plan.hit_count("serve.store.save") == 3
        assert plan.injections == [
            {"site": "serve.store.save", "action": "raise", "hit": 2, "rule": 0},
        ]

    def test_times_caps_an_always_rule(self):
        plan = FaultPlan(
            [FaultRule(site="serve.store.save", action="raise", times=2)]
        )
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                plan.apply("serve.store.save")
        assert plan.apply("serve.store.save", "ok") == "ok"

    def test_probability_sequence_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(site="serve.store.load", action="corrupt",
                           probability=0.4)],
                seed=seed,
            )
            for _ in range(60):
                plan.apply("serve.store.load", "x")
            return plan.injections

        first, second = run(7), run(7)
        assert first == second
        assert 0 < len(first) < 60  # actually probabilistic, not always/never

    def test_corrupt_mangles_str_and_bytes(self):
        plan = FaultPlan(
            [FaultRule(site="serve.store.load", action="corrupt")]
        )
        text = plan.apply("serve.store.load", '{"k": "value"}')
        assert text != '{"k": "value"}'
        with pytest.raises(json.JSONDecodeError):
            json.loads(text)
        plan2 = FaultPlan(
            [FaultRule(site="serve.store.load", action="corrupt")]
        )
        blob = plan2.apply("serve.store.load", b"0123456789")
        assert isinstance(blob, bytes) and blob != b"0123456789"

    def test_delay_sleeps(self):
        plan = FaultPlan(
            [FaultRule(site="serve.store.load", action="delay", delay_s=0.05)]
        )
        t0 = time.perf_counter()
        plan.apply("serve.store.load")
        assert time.perf_counter() - t0 >= 0.04

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule(site="serve.store.save", action="raise", nth=1),
                FaultRule(site="serve.store.load", action="delay",
                          probability=0.5, delay_s=0.2),
            ],
            seed=42,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.seed == 42
        assert again.rules == plan.rules

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            FaultPlan.from_json('{"seeed": 3}')

    def test_installed_restores_previous_plan(self):
        outer = FaultPlan([])
        inner = FaultPlan([])
        with installed(outer):
            with installed(inner):
                assert current_plan() is inner
            assert current_plan() is outer
        assert current_plan() is None

    def test_on_inject_callback(self):
        seen = []
        plan = FaultPlan(
            [FaultRule(site="serve.store.load", action="corrupt", nth=1)]
        )
        plan.on_inject = seen.append
        plan.apply("serve.store.load", "t")
        assert seen == [
            {"site": "serve.store.load", "action": "corrupt", "hit": 1,
             "rule": 0},
        ]

    def test_load_plan_spec_inline_and_file(self, tmp_path):
        text = '{"seed": 5, "rules": []}'
        assert load_plan_spec(text).seed == 5
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert load_plan_spec(str(path)).seed == 5

    def test_install_plan_from_env(self):
        plan = install_plan_from_env(
            {"REPRO_FAULT_PLAN": '{"seed": 9, "rules": []}'}
        )
        try:
            assert plan is not None and plan.seed == 9
            assert current_plan() is plan
        finally:
            uninstall_plan()
        assert install_plan_from_env({}) is None
        with pytest.raises(ValueError):
            install_plan_from_env({"REPRO_FAULT_PLAN": "{bad"})


# --------------------------------------------------------------------------- #
# Deadline / CircuitBreaker units
# --------------------------------------------------------------------------- #


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == pytest.approx(10.0)
        assert not deadline.expired
        deadline.check("early")  # no raise
        clock.advance(10.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError, match="at evaluate"):
            deadline.check("evaluate")

    def test_zero_budget_is_immediately_expired(self):
        deadline = Deadline(0.0, clock=FakeClock())
        assert deadline.expired

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestCircuitBreaker:
    def make(self, clock, threshold=2, reset=30.0):
        return CircuitBreaker(BreakerConfig(
            failure_threshold=threshold, reset_timeout_s=reset, clock=clock,
        ))

    def test_opens_after_consecutive_failures(self):
        breaker = self.make(FakeClock())
        assert breaker.allow()
        assert breaker.record_failure() is None
        assert breaker.record_failure() == "open"
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is None  # streak restarted
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps waiting

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        assert breaker.record_success() == "close"
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        assert breaker.record_failure() == "open"
        assert not breaker.allow()
        clock.advance(30.0)
        assert breaker.allow()  # next probe window

    def test_snapshot_shape(self):
        breaker = self.make(FakeClock(), threshold=3, reset=7.5)
        breaker.record_failure()
        assert breaker.snapshot() == {
            "state": "closed",
            "consecutive_failures": 1,
            "failure_threshold": 3,
            "reset_timeout_s": 7.5,
        }


# --------------------------------------------------------------------------- #
# Service-level chaos
# --------------------------------------------------------------------------- #


def _service(machine, shared_profile_cache, cache_dir, **kwargs):
    return AdvisorService(
        machine, cache_dir=cache_dir, profile_cache=shared_profile_cache,
        **kwargs,
    )


def _matrix(seed):
    return make_random_coo(64, 64, 300, seed=seed, with_values=False)


class TestServiceChaos:
    def test_mid_write_crash_leaves_no_partial_entry(
        self, machine, shared_profile_cache, tmp_path
    ):
        """Acceptance: a crash between tmp-write and rename leaves nothing
        behind, the request still succeeds, and the next one repopulates."""
        service = _service(machine, shared_profile_cache, tmp_path)
        plan = FaultPlan([FaultRule(
            site="ioutils.atomic_write_json.replace", action="raise", nth=1,
        )])
        matrix = _matrix(1)
        with installed(plan):
            rec = service.advise(matrix)
            assert not rec.cache_hit
            advisor_dir = tmp_path / "advisor"
            assert list(advisor_dir.glob("rec_*.json")) == []
            assert list(advisor_dir.glob("*.tmp")) == []

            again = service.advise(matrix)  # hit 2: no fire, save succeeds
            assert not again.cache_hit
            assert len(list(advisor_dir.glob("rec_*.json"))) == 1
            third = service.advise(matrix)
            assert third.cache_hit
        assert again.ranking == rec.ranking

    def test_corrupted_entry_is_discarded_and_recomputed(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = _service(machine, shared_profile_cache, tmp_path)
        plan = FaultPlan([FaultRule(
            site="ioutils.atomic_write_json.data", action="corrupt", nth=1,
        )])
        matrix = _matrix(2)
        with installed(plan):
            first = service.advise(matrix)
        second = service.advise(matrix)  # corrupt entry discarded, recomputed
        assert not second.cache_hit
        third = service.advise(matrix)
        assert third.cache_hit
        assert second.ranking == first.ranking == third.ranking

    def test_breaker_lifecycle_and_degraded_mode(
        self, machine, shared_profile_cache, tmp_path
    ):
        """Acceptance: breaker-open serves cached matrices flagged degraded,
        refuses uncached ones with ServiceUnavailableError, and a half-open
        probe closes it again."""
        clock = FakeClock()
        service = _service(
            machine, shared_profile_cache, tmp_path,
            breaker_config=BreakerConfig(
                failure_threshold=2, reset_timeout_s=30.0, clock=clock,
            ),
        )
        cached, uncached = _matrix(3), _matrix(4)
        baseline = service.advise(cached)  # populate the cache

        plan = FaultPlan([FaultRule(site="serve.service.advise", action="raise")])
        with installed(plan):
            for _ in range(2):
                with pytest.raises(FaultInjectedError):
                    service.advise(uncached)
            events = service.stats()["resilience"]["events"]
            assert events.get("breaker_open") == 1
            assert events.get("fault_injected") == 2

            # Open: uncached is refused without touching the cold path...
            with pytest.raises(ServiceUnavailableError, match="breaker"):
                service.advise(uncached)
            assert plan.hit_count("serve.service.advise") == 2
            # ...while the cached matrix still answers, flagged degraded.
            rec = service.advise(cached)
            assert rec.cache_hit and rec.degraded
            assert service.stats()["degraded"] == 1

        clock.advance(30.0)  # reset window: next cold call is the probe
        recovered = service.advise(uncached)
        assert recovered.ranking
        events = service.stats()["resilience"]["events"]
        assert events.get("breaker_close") == 1
        post = service.advise(cached)
        assert post.cache_hit and not post.degraded
        assert post.ranking == baseline.ranking
        breakers = service.stats()["resilience"]["breakers"]
        assert breakers["dp"]["state"] == "closed"

    def test_expired_deadline_raises(
        self, machine, shared_profile_cache, tmp_path
    ):
        service = _service(machine, shared_profile_cache, tmp_path)
        with pytest.raises(DeadlineExceededError):
            service.advise(_matrix(5), deadline=Deadline(0.0))
        assert service.stats()["errors"] == 1


# --------------------------------------------------------------------------- #
# Engine-level chaos
# --------------------------------------------------------------------------- #


class TestEngineChaos:
    def test_injected_task_fault_is_retried(self, tmp_path):
        reporter = CollectingReporter()
        plan = FaultPlan([FaultRule(
            site="engine.pool.task", action="raise", nth=1,
        )])
        with installed(plan):
            engine = SweepEngine(
                STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
                reporters=[reporter], backoff_base_s=0.01, backoff_cap_s=0.01,
            )
            result = engine.run()
        assert result.missing == []
        assert len(result.matrices) == len(SUBSET)
        assert len(reporter.of("shard_retry")) == 1
        injected = reporter.of("fault_injected")
        assert [e["site"] for e in injected] == ["engine.pool.task"]

    def test_fault_storm_quarantines_instead_of_hanging(self, tmp_path):
        reporter = CollectingReporter()
        plan = FaultPlan([FaultRule(site="engine.pool.task", action="raise")])
        with installed(plan):
            engine = SweepEngine(
                STUB_CONFIG, cache_dir=tmp_path, jobs=1, task_fn=stub_task,
                reporters=[reporter], max_retries=1,
                backoff_base_s=0.01, backoff_cap_s=0.01,
            )
            result = engine.run()
        assert result.missing == list(SUBSET)
        assert result.matrices == []
        assert len(reporter.of("shard_quarantined")) == len(SUBSET)


# --------------------------------------------------------------------------- #
# Server-level chaos
# --------------------------------------------------------------------------- #


@contextlib.contextmanager
def running_server(service, **kwargs):
    srv = create_server(service, port=0, **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _post(srv, body, timeout=60):
    port = srv.server_address[1]
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/advise",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestServerChaos:
    @pytest.fixture()
    def service(self, machine, shared_profile_cache, tmp_path):
        return _service(machine, shared_profile_cache, tmp_path)

    def test_overload_sheds_with_503_and_retry_after(self, service):
        service.advise("dense")  # warm the cache: requests below are fast
        plan = FaultPlan([FaultRule(
            site="serve.server.request", action="delay", nth=1, delay_s=0.6,
        )])
        with installed(plan), running_server(service, max_inflight=1) as srv:
            results = []
            slow = threading.Thread(target=lambda: results.append(
                _post(srv, {"suite": "dense", "top": 1})
            ))
            slow.start()
            time.sleep(0.25)  # let the delayed request claim the only slot
            status, payload, headers = _post(srv, {"suite": "dense", "top": 1})
            slow.join(timeout=30)
        assert status == 503
        assert "capacity" in payload["error"]
        assert headers.get("Retry-After") == "1"
        assert results and results[0][0] == 200
        events = service.stats()["resilience"]["events"]
        assert events.get("request_shed", 0) >= 1

    def test_over_budget_request_gets_504(self, service):
        service.advise("dense")
        plan = FaultPlan([FaultRule(
            site="serve.service.profile", action="delay", delay_s=0.1,
        )])
        with installed(plan), running_server(service) as srv:
            status, payload, _ = _post(
                srv, {"suite": "dense", "top": 1, "timeout_s": 0.03}
            )
        assert status == 504
        assert "deadline" in payload["error"]
        events = service.stats()["resilience"]["events"]
        assert events.get("request_deadline_exceeded") == 1

    def test_bad_timeout_s_is_a_400(self, service):
        with running_server(service) as srv:
            status, payload, _ = _post(srv, {"suite": "dense", "timeout_s": -2})
        assert status == 400
        assert "timeout_s" in payload["error"]

    def test_oversized_body_gets_413(self, service):
        with running_server(service, max_body_bytes=64) as srv:
            body = {"matrix_market": "x" * 500}
            status, payload, _ = _post(srv, body)
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_unexpected_exception_is_a_json_500(self, service):
        plan = FaultPlan([FaultRule(
            site="serve.server.request", action="raise", nth=1,
        )])
        with installed(plan), running_server(service) as srv:
            status, payload, _ = _post(srv, {"suite": "dense", "top": 1})
            again, _, _ = _post(srv, {"suite": "dense", "top": 1})
        assert status == 500
        assert "internal server error" in payload["error"]
        assert again == 200  # one poisoned request never wedges the server

    def test_degraded_flag_in_payload(self, service):
        with running_server(service) as srv:
            status, payload, _ = _post(srv, {"suite": "dense", "top": 1})
        assert status == 200
        assert payload["degraded"] is False

    def test_drain_finishes_inflight_requests(self, service):
        """Acceptance: drain lets the in-flight request complete, emits the
        drain events, and reports clean."""
        service.advise("dense")
        plan = FaultPlan([FaultRule(
            site="serve.server.request", action="delay", nth=1, delay_s=0.4,
        )])
        srv = create_server(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        results = []
        try:
            with installed(plan):
                inflight = threading.Thread(target=lambda: results.append(
                    _post(srv, {"suite": "dense", "top": 1})
                ))
                inflight.start()
                time.sleep(0.15)
                clean = srv.drain()
                inflight.join(timeout=30)
        finally:
            srv.server_close()
            thread.join(timeout=5)
        assert clean
        assert results and results[0][0] == 200
        events = service.stats()["resilience"]["events"]
        assert events.get("drain_begin") == 1
        assert events.get("drain_end") == 1
        assert not srv.try_admit()  # a drained server admits nothing


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestCli:
    def test_busy_port_is_a_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = main([
                "serve", "--port", str(port), "--cache-dir", str(tmp_path),
            ])
        finally:
            blocker.close()
        assert rc == 1
        err = capsys.readouterr().err
        assert "already in use" in err
        assert "repro serve" in err

    @pytest.mark.parametrize("argv", [
        ["serve", "--fault-plan", "{bad json"],
        ["advise", "dense", "--fault-plan", "/no/such/plan.json"],
    ])
    def test_bad_fault_plan_exits_2(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 2
        assert "invalid fault plan" in capsys.readouterr().err

    @pytest.mark.slow
    def test_port_zero_and_sigterm_drain(self, tmp_path):
        """Acceptance: --port 0 announces the chosen port; SIGTERM drains
        and exits 0."""
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--cache-dir", str(tmp_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://127.0.0.1:" in line
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            assert port > 0
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as resp:
                assert json.loads(resp.read()) == {"status": "ok"}
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            assert rc == 0
            stderr = proc.stderr.read()
            assert "final_stats" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
