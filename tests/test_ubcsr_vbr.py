"""Tests for the UBCSR and VBR extension formats."""

import numpy as np
import pytest

from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    UBCSRMatrix,
    VBRMatrix,
)
from repro.formats.vbr import pattern_partition

from .conftest import make_random_coo


class TestUBCSR:
    @pytest.mark.parametrize("r,c", [(1, 3), (2, 2), (3, 2), (2, 4)])
    def test_spmv_matches_reference(self, r, c, small_coo, small_x):
        ub = UBCSRMatrix.from_coo(small_coo, (r, c))
        np.testing.assert_allclose(
            ub.spmv(small_x), small_coo.to_dense() @ small_x
        )

    def test_never_pads_more_than_bcsr(self, small_coo):
        """Relaxing column alignment can only reduce the block count."""
        for block in [(1, 4), (2, 2), (2, 3)]:
            ub = UBCSRMatrix.from_coo(small_coo, block, with_values=False)
            bc = BCSRMatrix.from_coo(small_coo, block, with_values=False)
            assert ub.n_blocks <= bc.n_blocks

    def test_unaligned_run_is_one_block(self):
        """A run starting at an odd column fits one unaligned 1x4 block
        where aligned BCSR needs two."""
        coo = COOMatrix(1, 8, [0, 0, 0, 0], [3, 4, 5, 6], [1.0] * 4)
        ub = UBCSRMatrix.from_coo(coo, (1, 4))
        bc = BCSRMatrix.from_coo(coo, (1, 4))
        assert ub.n_blocks == 1
        assert bc.n_blocks == 2

    def test_blocks_do_not_overlap_within_band(self):
        coo = make_random_coo(24, 40, 140, seed=31, with_values=False)
        ub = UBCSRMatrix.from_coo(coo, (2, 3), with_values=False)
        brows = ub.block_rows_of_blocks()
        for band in range(ub.n_block_rows):
            starts = np.sort(ub.bcol_start[brows == band])
            assert np.all(np.diff(starts) >= 3)

    def test_to_dense_round_trip(self, small_coo):
        ub = UBCSRMatrix.from_coo(small_coo, (2, 2))
        np.testing.assert_allclose(ub.to_dense(), small_coo.to_dense())

    def test_working_set(self, small_coo):
        ub = UBCSRMatrix.from_coo(small_coo, (2, 2))
        nb = ub.n_blocks
        expected = 8 * nb * 4 + 4 * nb + 4 * (ub.n_block_rows + 1) + 8 * 105
        assert ub.working_set("dp") == expected


class TestPatternPartition:
    def test_identical_rows_group(self):
        # rows 0 and 1 identical, row 2 different.
        ptr = np.array([0, 2, 4, 5])
        idx = np.array([1, 3, 1, 3, 0])
        bounds = pattern_partition(ptr, idx, 3)
        assert bounds.tolist() == [0, 2, 3]

    def test_all_distinct(self):
        ptr = np.array([0, 1, 2])
        idx = np.array([0, 1])
        assert pattern_partition(ptr, idx, 2).tolist() == [0, 1, 2]

    def test_equal_length_different_content(self):
        ptr = np.array([0, 2, 4])
        idx = np.array([0, 1, 0, 2])
        assert pattern_partition(ptr, idx, 2).tolist() == [0, 1, 2]

    def test_empty(self):
        assert pattern_partition(np.array([0]), np.empty(0, dtype=int), 0).tolist() == [0]


class TestVBR:
    def test_spmv_matches_reference(self, small_coo, small_x):
        vbr = VBRMatrix.from_coo(small_coo)
        np.testing.assert_allclose(
            vbr.spmv(small_x), small_coo.to_dense() @ small_x
        )

    def test_blocked_structure_on_fem_pattern(self):
        """dof-expanded meshes have runs of identical rows -> real blocks."""
        from repro.matrices.generators import grid2d, random_values

        coo = random_values(grid2d(6, 6, 5, dof=3), seed=1)
        vbr = VBRMatrix.from_coo(coo)
        assert vbr.n_block_rows < coo.nrows  # rows actually grouped
        assert vbr.nnz_stored == coo.nnz     # fully dense blocks, no padding
        x = np.random.default_rng(2).standard_normal(coo.ncols)
        np.testing.assert_allclose(vbr.spmv(x), coo.to_dense() @ x)

    def test_no_padding(self, small_coo):
        vbr = VBRMatrix.from_coo(small_coo)
        assert vbr.padding == 0

    def test_to_dense_round_trip(self, small_coo):
        vbr = VBRMatrix.from_coo(small_coo)
        np.testing.assert_allclose(vbr.to_dense(), small_coo.to_dense())

    def test_indx_brackets_val(self, small_coo):
        vbr = VBRMatrix.from_coo(small_coo)
        assert vbr.indx[0] == 0
        assert vbr.indx[-1] == vbr.val.shape[0]
        assert np.all(np.diff(vbr.indx) > 0)

    def test_empty_matrix(self):
        vbr = VBRMatrix.from_coo(COOMatrix(3, 3, [], [], []))
        np.testing.assert_array_equal(vbr.spmv(np.ones(3)), np.zeros(3))
