"""Tests for the iterative solvers built on the SpMV formats."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.formats import COOMatrix, build_format
from repro.matrices.generators import grid2d
from repro.solvers import bicgstab, cg, jacobi, power_iteration


def poisson_2d(nx: int, ny: int) -> COOMatrix:
    """The standard SPD 5-point Laplacian on an nx x ny grid."""
    stencil = grid2d(nx, ny, 5)
    values = np.where(stencil.rows == stencil.cols, 4.0, -1.0)
    return stencil.with_values(values)


def diag_dominant(n: int, seed: int = 0) -> COOMatrix:
    """A random strictly diagonally dominant matrix."""
    rng = np.random.default_rng(seed)
    k = n * 4
    rows = rng.integers(0, n, k)
    cols = rng.integers(0, n, k)
    vals = rng.uniform(-1.0, 1.0, k)
    coo = COOMatrix(n, n, rows, cols, vals)
    # Overwrite the diagonal with a dominant value.
    row_abs = np.zeros(n)
    np.add.at(row_abs, coo.rows, np.abs(coo.values))
    diag_idx = np.arange(n)
    return COOMatrix(
        n, n,
        np.concatenate([coo.rows[coo.rows != coo.cols], diag_idx]),
        np.concatenate([coo.cols[coo.rows != coo.cols], diag_idx]),
        np.concatenate([coo.values[coo.rows != coo.cols], row_abs + 1.0]),
    )


@pytest.fixture(scope="module")
def spd_system():
    A = poisson_2d(18, 18)
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(A.nrows)
    b = A.to_dense() @ x_true
    return A, b, x_true


class TestCG:
    def test_solves_poisson(self, spd_system):
        A, b, x_true = spd_system
        csr = build_format(A, "csr")
        res = cg(csr, b, tol=1e-10, max_iter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    @pytest.mark.parametrize("kind,block", [
        ("bcsr", (2, 2)), ("bcsr_dec", (2, 2)), ("bcsd", 3), ("vbl", None),
    ])
    def test_format_independent(self, spd_system, kind, block):
        A, b, x_true = spd_system
        fmt = build_format(A, kind, block)
        res = cg(fmt, b, tol=1e-10, max_iter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_counts_spmv(self, spd_system):
        A, b, _ = spd_system
        res = cg(build_format(A, "csr"), b, tol=1e-10)
        assert res.spmv_count == res.iterations + 1

    def test_warm_start(self, spd_system):
        A, b, x_true = spd_system
        csr = build_format(A, "csr")
        cold = cg(csr, b, tol=1e-10)
        warm = cg(csr, b, x0=x_true + 1e-6, tol=1e-10)
        assert warm.iterations < cold.iterations

    def test_nonconvergence_reported(self, spd_system):
        A, b, _ = spd_system
        res = cg(build_format(A, "csr"), b, tol=1e-14, max_iter=2)
        assert not res.converged
        assert res.iterations == 2

    def test_rejects_rectangular(self):
        A = COOMatrix(3, 4, [0], [0], [1.0])
        with pytest.raises(ShapeMismatchError):
            cg(A, np.ones(3))

    def test_rejects_wrong_b(self, spd_system):
        A, _, _ = spd_system
        with pytest.raises(ShapeMismatchError):
            cg(build_format(A, "csr"), np.ones(A.nrows + 1))


class TestBiCGSTAB:
    def test_solves_nonsymmetric(self):
        A = diag_dominant(300, seed=2)
        rng = np.random.default_rng(3)
        x_true = rng.standard_normal(300)
        b = A.to_dense() @ x_true
        res = bicgstab(build_format(A, "csr"), b, tol=1e-12, max_iter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_two_spmv_per_iteration(self):
        A = diag_dominant(120, seed=4)
        b = np.ones(120)
        res = bicgstab(build_format(A, "csr"), b, tol=1e-10)
        assert res.spmv_count <= 2 * res.iterations + 1

    def test_zero_rhs(self):
        A = diag_dominant(50, seed=5)
        res = bicgstab(build_format(A, "csr"), np.zeros(50))
        assert res.converged
        np.testing.assert_allclose(res.x, 0.0)


class TestJacobi:
    def test_solves_diagonally_dominant(self):
        A = diag_dominant(200, seed=6)
        rng = np.random.default_rng(7)
        x_true = rng.standard_normal(200)
        b = A.to_dense() @ x_true
        res = jacobi(build_format(A, "csr"), b, tol=1e-12, max_iter=20_000)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_blocked_format(self):
        A = diag_dominant(120, seed=8)
        b = np.ones(120)
        csr_res = jacobi(build_format(A, "csr"), b, tol=1e-10,
                         max_iter=20_000)
        bcsr_res = jacobi(build_format(A, "bcsr", (2, 2)), b, tol=1e-10,
                          max_iter=20_000)
        np.testing.assert_allclose(bcsr_res.x, csr_res.x, atol=1e-8)

    def test_rejects_zero_diagonal(self):
        A = COOMatrix(2, 2, [0, 1], [1, 0], [1.0, 1.0])
        with pytest.raises(ShapeMismatchError):
            jacobi(A, np.ones(2))


class TestPowerIteration:
    def test_dominant_eigenvalue(self):
        dense = np.diag([5.0, 2.0, 1.0])
        dense[0, 1] = 0.1
        A = COOMatrix.from_dense(dense)
        lam, v, iters = power_iteration(build_format(A, "csr"), tol=1e-12)
        assert lam == pytest.approx(5.0, rel=1e-4)
        assert abs(v[0]) > 0.99

    def test_poisson_spectrum_bound(self, spd_system):
        A, _, _ = spd_system
        lam, _, _ = power_iteration(build_format(A, "csr"), tol=1e-10)
        assert 4.0 < lam < 8.0  # Gershgorin bound for the 5-point Laplacian

    def test_rejects_rectangular(self):
        A = COOMatrix(3, 4, [0], [0], [1.0])
        with pytest.raises(ShapeMismatchError):
            power_iteration(A)


class TestDiagonalExtraction:
    """diagonal() on every format (used by Jacobi)."""

    @pytest.mark.parametrize("kind,block", [
        ("csr", None), ("bcsr", (2, 3)), ("bcsr_dec", (2, 2)),
        ("bcsd", 4), ("bcsd_dec", 3), ("vbl", None), ("ubcsr", (3, 2)),
        ("vbr", None),
    ])
    def test_matches_dense(self, kind, block):
        rng = np.random.default_rng(9)
        n = 50
        coo = COOMatrix(
            n, n, rng.integers(0, n, 400), rng.integers(0, n, 400),
            rng.standard_normal(400),
        )
        fmt = build_format(coo, kind, block)
        np.testing.assert_allclose(
            fmt.diagonal(), np.diagonal(coo.to_dense())
        )

    def test_rectangular_diagonal(self):
        coo = COOMatrix(3, 6, [0, 1, 2], [0, 1, 5], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(coo.diagonal(), [1.0, 2.0, 0.0])
