"""Tests for the simulation-plan layer and the profile warm start.

The contract under test is *bit identity*: the plan-based ``simulate``,
the disk-served profiles and the warm-started engine must reproduce the
exact bytes the historical per-call path produced — no tolerances anywhere.
"""

import dataclasses
import json

import pytest

from repro.bench.harness import SweepConfig, run_sweep, sweep_matrix
from repro.core.profiling import (
    ProfileCache,
    ProfileStore,
    dense_coo,
    machine_token,
    profile_from_payload,
    profile_to_payload,
)
from repro.formats.coo import COOMatrix
from repro.machine import get_preset
from repro.machine.executor import simulate, simulate_reference
from repro.machine.plan import get_plan
from repro.matrices.suite import get_entry
from repro.types import Impl, Precision

from .conftest import make_random_coo


def _test_matrices():
    import numpy as np

    yield "dense40", dense_coo(40)
    yield "random", make_random_coo(300, 300, 4000, seed=5, with_values=False)
    yield "tall", make_random_coo(500, 80, 2500, seed=6, with_values=False)
    # Latency-bound: a huge sparse footprint whose x stream exceeds the
    # 32768-line budget, exercising the full vectorized estimator path.
    rng = np.random.default_rng(9)
    n = 1_200_000
    nnz = 120_000
    yield "latency", COOMatrix(
        500, n, rng.integers(0, 500, nnz), rng.integers(0, n, nnz), None
    )


def _candidates():
    return (
        ("csr", None),
        ("vbl", None),
        ("bcsr", (2, 2)),
        ("bcsr_dec", (2, 2)),
        ("bcsd", 2),
        ("bcsd_dec", 2),
    )


def _build(coo, kind, block):
    from repro.core.candidates import Candidate
    from repro.core.selection import build_candidate

    return build_candidate(coo, Candidate(kind, block, Impl.SCALAR))


class TestPlanBitIdentity:
    @pytest.mark.parametrize("name,coo", list(_test_matrices()))
    def test_simulate_equals_reference(self, name, coo, machine):
        """Every field of every cell, across formats, precisions, impls
        and thread counts, is exactly the reference value."""
        for kind, block in _candidates():
            fmt = _build(coo, kind, block)
            for precision in ("sp", "dp"):
                for impl in (Impl.SCALAR, Impl.SIMD):
                    for nthreads in (1, 2, 4):
                        got = simulate(fmt, machine, precision, impl, nthreads)
                        want = simulate_reference(
                            fmt, machine, precision, impl, nthreads
                        )
                        assert got == want, (name, kind, precision, impl, nthreads)

    def test_zero_col_ind_matches(self, machine):
        fmt = _build(dict(_test_matrices())["latency"], "csr", None)
        got = simulate(fmt, machine, "dp", zero_col_ind=True)
        want = simulate_reference(fmt, machine, "dp", zero_col_ind=True)
        assert got == want
        assert got.t_latency == 0.0

    def test_bad_nthreads_same_error(self, machine):
        fmt = _build(dense_coo(40), "csr", None)
        with pytest.raises(Exception) as plan_exc:
            simulate(fmt, machine, "dp", nthreads=0)
        with pytest.raises(Exception) as ref_exc:
            simulate_reference(fmt, machine, "dp", nthreads=0)
        assert str(plan_exc.value) == str(ref_exc.value)


class TestPlanReuse:
    def test_plan_cached_per_machine_and_precision(self, machine):
        fmt = _build(dense_coo(40), "bcsr", (2, 2))
        p1 = get_plan(fmt, machine, "dp")
        assert get_plan(fmt, machine, "dp") is p1
        assert get_plan(fmt, machine, "sp") is not p1
        other = get_preset("generic-modern")
        assert get_plan(fmt, other, "dp") is not p1

    def test_cells_share_memoised_partitions(self, machine):
        fmt = _build(make_random_coo(200, 200, 2000, seed=7), "csr", None)
        plan = get_plan(fmt, machine, "dp")
        plan.run(Impl.SCALAR, 1)
        plan.run(Impl.SCALAR, 2)
        n_partitions = len(plan._partitions)
        plan.run(Impl.SIMD, 2)  # same structure, same partition
        assert len(plan._partitions) == n_partitions

    def test_run_cells_batches(self, machine):
        fmt = _build(dense_coo(40), "csr", None)
        plan = get_plan(fmt, machine, "dp")
        cells = [(Impl.SCALAR, t) for t in (1, 2, 4)]
        assert plan.run_cells(cells) == [plan.run(i, t) for i, t in cells]


class TestProfilePersistence:
    def test_payload_round_trip_is_float_exact(self, machine, profile_dp):
        # Through an actual JSON string, as the store does.
        payload = json.loads(json.dumps(profile_to_payload(profile_dp)))
        back = profile_from_payload(payload)
        assert back == profile_dp  # dataclass equality: exact dict floats

    def test_machine_token_is_content_keyed(self, machine):
        assert machine_token(machine) == machine_token(machine)
        assert machine_token(machine) != machine_token(
            get_preset("generic-modern")
        )
        tweaked = dataclasses.replace(machine, clock_hz=machine.clock_hz + 1)
        assert machine_token(tweaked) != machine_token(machine)

    def test_store_serves_from_disk_exactly(self, tmp_path, machine):
        store = ProfileStore(tmp_path)
        profile, source = store.get_with_source(machine, "dp")
        assert source == "calibrated"
        # A fresh store (new process, cold memory) must hit the disk file
        # and produce the identical profile.
        store2 = ProfileStore(tmp_path)
        again, source2 = store2.get_with_source(machine, "dp")
        assert source2 == "disk"
        assert again == profile
        _, source3 = store2.get_with_source(machine, "dp")
        assert source3 == "memory"

    def test_corrupt_profile_recalibrates(self, tmp_path, machine):
        store = ProfileStore(tmp_path)
        profile, _ = store.get_with_source(machine, "dp")
        path = store.path(machine, Precision.DP, False)
        path.write_text("{not json")
        fresh = ProfileStore(tmp_path)
        again, source = fresh.get_with_source(machine, "dp")
        assert source == "calibrated"
        assert again == profile  # calibration is deterministic

    def test_seed_skips_calibration(self, machine, profile_dp, monkeypatch):
        import repro.core.profiling as profiling

        cache = ProfileCache()
        cache.seed(machine, profile_dp)
        monkeypatch.setattr(
            profiling, "profile_machine", _boom, raising=True
        )
        assert cache.get(machine, "dp") is profile_dp


def _boom(*a, **k):  # pragma: no cover - must never run
    raise AssertionError("calibration ran despite a seeded profile")


class TestEngineWarmStart:
    def _config(self):
        return SweepConfig(
            precisions=("dp",),
            thread_counts=(1,),
            max_block_elems=4,
            suite_indices=(1,),
        )

    def test_shard_task_ships_profiles(self, machine, profile_dp, monkeypatch):
        """A shipped profile makes the worker skip calibration entirely."""
        import repro.core.profiling as profiling
        import repro.engine.tasks as tasks

        monkeypatch.setattr(profiling, "profile_machine", _boom, raising=True)
        monkeypatch.setattr(tasks, "_PROFILE_CACHE", ProfileCache())
        task = tasks.plan_shards(self._config(), profiles=(profile_dp,))[0]
        matrix = tasks.run_shard_task(task)
        assert matrix.records

    def test_profiles_excluded_from_task_identity(self, profile_dp):
        from repro.engine.tasks import plan_shards

        bare = plan_shards(self._config())[0]
        warm = plan_shards(self._config(), profiles=(profile_dp,))[0]
        assert bare == warm
        assert hash(bare) == hash(warm)

    def test_engine_reuses_disk_profile(self, tmp_path):
        from repro.engine.events import CollectingReporter
        from repro.engine.pool import SweepEngine

        config = self._config()
        rep1 = CollectingReporter()
        first = SweepEngine(
            config, cache_dir=tmp_path, reporters=[rep1]
        ).run()
        assert [e["source"] for e in rep1.of("profile_ready")] == ["calibrated"]

        # Drop the shard so the second run recomputes it — warm this time.
        import shutil

        shutil.rmtree(tmp_path / "shards")
        rep2 = CollectingReporter()
        second = SweepEngine(
            config, cache_dir=tmp_path, reporters=[rep2]
        ).run()
        assert [e["source"] for e in rep2.of("profile_ready")] == ["disk"]
        assert first.canonical_json() == second.canonical_json()

    def test_cached_sweep_skips_calibration(self, tmp_path):
        from repro.engine.events import CollectingReporter
        from repro.engine.pool import SweepEngine

        config = self._config()
        SweepEngine(config, cache_dir=tmp_path).run()
        rep = CollectingReporter()
        SweepEngine(config, cache_dir=tmp_path, reporters=[rep]).run()
        assert rep.of("profile_ready") == []  # nothing pending, no profiling

    def test_stub_task_fn_does_not_warm(self, tmp_path):
        from repro.engine.pool import SweepEngine

        engine = SweepEngine(
            self._config(), cache_dir=tmp_path, task_fn=lambda t: None
        )
        assert engine.warm_profiles is False


class TestPhaseTimings:
    def test_sweep_matrix_attaches_breakdown(self, machine, shared_profile_cache):
        config = SweepConfig(
            precisions=("dp",), thread_counts=(1,), max_block_elems=4,
            suite_indices=(1,),
        )
        matrix = sweep_matrix(
            get_entry(1), config, machine=machine,
            profile_cache=shared_profile_cache,
        )
        timings = matrix._phase_timings
        assert set(timings) <= {"convert", "stats", "simulate", "models"}
        assert timings["convert"] > 0.0
        assert timings["simulate"] > 0.0
        # Non-field attribute: stays out of the persisted payload.
        assert "_phase_timings" not in dataclasses.asdict(matrix)

    def test_shard_finish_event_carries_phases(self, tmp_path):
        from repro.engine.events import CollectingReporter
        from repro.engine.pool import SweepEngine

        rep = CollectingReporter()
        SweepEngine(
            SweepConfig(
                precisions=("dp",), thread_counts=(1,), max_block_elems=4,
                suite_indices=(1,),
            ),
            cache_dir=tmp_path,
            reporters=[rep],
        ).run()
        (finish,) = rep.of("shard_finish")
        assert finish["phases"]["simulate"] >= 0.0


@pytest.mark.slow
class TestGoldenFingerprint:
    def test_reduced_sweep_reproduces_reference_bytes(self, machine):
        """The end-to-end guarantee: both the per-cell SimPlan path and the
        batched array program reproduce the preserved reference simulator's
        sweep byte-for-byte over the reduced golden config, on matrices
        covering the dense, regular-sparse and latency-bound regimes
        (suite indices 1, 27, 30)."""
        config = SweepConfig(
            precisions=("dp",),
            thread_counts=(1,),
            max_block_elems=4,
            suite_indices=(1, 27, 30),
        )
        shared = ProfileCache()
        reference = run_sweep(
            config=config,
            machine=machine,
            profile_cache=shared,
            simulate_fn=simulate_reference,
        )
        batched = run_sweep(
            config=config, machine=machine, profile_cache=shared
        )
        per_cell = run_sweep(
            config=config, machine=machine, profile_cache=shared, batch=False
        )
        assert batched.canonical_json() == reference.canonical_json()
        assert per_cell.canonical_json() == reference.canonical_json()
