"""Regression tests for the simulator's handling of decomposed formats."""

import numpy as np
import pytest

from repro.formats import COOMatrix, build_format
from repro.machine import CORE2_XEON, simulate
from repro.matrices.generators import grid2d, random_uniform


class TestEtaPerPart:
    def test_degenerate_dec_equals_csr_modulo_floor(self):
        """A decomposition whose blocked part is empty is literally a CSR
        matrix: a 'SIMD' run must not change its exposed-compute fraction
        (regression: eta used the requested impl, not the executed one)."""
        coo = random_uniform(60_000, 60_000, 600_000, seed=1)
        csr = build_format(coo, "csr", with_values=False)
        dec = build_format(coo, "bcsr_dec", (1, 3), with_values=False)
        if len(dec.submatrices()) == 1:  # fully degenerate
            t_csr = simulate(csr, CORE2_XEON, "dp", "scalar")
            t_dec = simulate(dec, CORE2_XEON, "dp", "simd")
            assert t_dec.t_comp == pytest.approx(t_csr.t_comp)
            assert t_dec.t_total == pytest.approx(t_csr.t_total)

    def test_simd_only_moves_the_blocked_part(self):
        """For a two-part DEC, switching kernels changes compute *less*
        than for the pure-BCSR matrix: the CSR remainder stays scalar and
        dilutes the effect (whichever direction it goes for the shape)."""
        coo = grid2d(80, 80, 5, dof=3, drop_fraction=0.3, seed=2)
        dec = build_format(coo, "bcsr_dec", (3, 2), with_values=False)
        assert len(dec.submatrices()) == 2
        bcsr = build_format(coo, "bcsr", (3, 2), with_values=False)

        def simd_shift(fmt):
            scalar = simulate(fmt, CORE2_XEON, "sp", "scalar").t_comp
            simd = simulate(fmt, CORE2_XEON, "sp", "simd").t_comp
            return abs(simd / scalar - 1.0)

        assert simd_shift(dec) < simd_shift(bcsr)


class TestDecompositionPenalty:
    def test_two_part_dec_slower_than_sum_of_streams(self):
        """The multiple-pass locality loss makes t_mem exceed ws/BW."""
        coo = grid2d(160, 160, 5, dof=3, drop_fraction=0.3, seed=3)
        dec = build_format(coo, "bcsr_dec", (3, 2), with_values=False)
        assert len(dec.submatrices()) == 2
        res = simulate(dec, CORE2_XEON, "dp", "scalar")
        ws = dec.working_set("dp")
        plain_stream = ws / CORE2_XEON.stream_bandwidth(ws)
        assert res.t_mem > plain_stream

    def test_factor_bounds(self):
        m = CORE2_XEON
        assert m.decomposition_mem_factor([1.0]) == 1.0
        balanced = m.decomposition_mem_factor([0.5, 0.5])
        lopsided = m.decomposition_mem_factor([0.98, 0.02])
        assert 1.0 < lopsided < balanced
        assert balanced == pytest.approx(1.0 + m.dec_overlap_loss)

    def test_floor_applies_to_lopsided_splits(self):
        m = CORE2_XEON
        lopsided = m.decomposition_mem_factor([0.999, 0.001])
        assert lopsided >= 1.0 + 0.15 * m.dec_overlap_loss - 1e-12


class TestLatencyAccounting:
    def test_dec_charges_x_traffic_per_pass(self):
        """A two-pass DEC streams x (and y) once per pass: the double
        x-walk is charged in the working set — the latency term only
        carries the *irregular re-fetches*, which both layouts pay."""
        rng = np.random.default_rng(4)
        n = 400_000
        # Half the nonzeros form full 1x2 runs, half are scattered.
        starts = rng.integers(0, n // 2 - 1, 150_000) * 2
        run_rows = rng.integers(0, n, 150_000)
        scat_rows = rng.integers(0, n, 300_000)
        scat_cols = rng.integers(0, n, 300_000)
        coo = COOMatrix(
            n, n,
            np.concatenate([run_rows, run_rows, scat_rows]),
            np.concatenate([starts, starts + 1, scat_cols]),
            None,
        )
        csr = build_format(coo, "csr", with_values=False)
        dec = build_format(coo, "bcsr_dec", (1, 2), with_values=False)
        assert len(dec.submatrices()) == 2
        r_csr = simulate(csr, CORE2_XEON, "dp", "scalar")
        r_dec = simulate(dec, CORE2_XEON, "dp", "scalar")
        # Both layouts suffer irregular x re-fetches on this matrix ...
        assert r_csr.x_misses > 0
        assert r_dec.x_misses > 0
        # ... and the DEC working set carries the second x/y walk.
        per_pass_vectors = 8 * (coo.nrows + coo.ncols)
        assert dec.working_set("dp") >= (
            csr.working_set("dp") - 4 * coo.nnz + per_pass_vectors
        )
