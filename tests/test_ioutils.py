"""Tests for the shared filesystem helpers (atomic writes, tmp cleanup)."""

import json
import os
import time

import pytest

from repro.ioutils import (
    atomic_write_json,
    remove_stale_tmp_files,
)


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "out.json"
        atomic_write_json(path, {"a": [1, 2.5], "b": None})
        assert json.loads(path.read_text()) == {"a": [1, 2.5], "b": None}

    def test_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unserializable_payload_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "out.json"
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_keeps_old_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_concurrent_writers_same_target(self, tmp_path):
        """Threads saving the same path must not share a tmp file — the
        advisor's batch mode writes one key from several threads at once."""
        from concurrent.futures import ThreadPoolExecutor

        path = tmp_path / "out.json"
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(atomic_write_json, path, {"v": i})
                for i in range(50)
            ]
            for f in futures:
                f.result()  # no FileNotFoundError from a stolen tmp
        assert json.loads(path.read_text())["v"] in range(50)
        assert list(tmp_path.glob("*.tmp")) == []


class TestRemoveStaleTmpFiles:
    def test_missing_dir_is_fine(self, tmp_path):
        assert remove_stale_tmp_files(tmp_path / "nope") == []

    def test_dead_writer_pid_removed(self, tmp_path):
        # Use a pid far above any plausible live process.
        dead = tmp_path / "cache.json.999999999.tmp"
        dead.write_text("{")
        removed = remove_stale_tmp_files(tmp_path)
        assert removed == [dead]
        assert not dead.exists()

    def test_live_writer_pid_kept(self, tmp_path):
        live = tmp_path / f"cache.json.{os.getpid()}.tmp"
        live.write_text("{")
        assert remove_stale_tmp_files(tmp_path) == []
        assert live.exists()

    def test_sequence_stamped_names_parse(self, tmp_path):
        live = tmp_path / f"cache.json.{os.getpid()}-7.tmp"
        live.write_text("{")
        dead = tmp_path / "cache.json.999999999-0.tmp"
        dead.write_text("{")
        assert remove_stale_tmp_files(tmp_path) == [dead]
        assert live.exists()

    def test_unrecognized_name_uses_age(self, tmp_path):
        young = tmp_path / "scratch.tmp"
        young.write_text("x")
        assert remove_stale_tmp_files(tmp_path) == []
        old = time.time() - 7200
        os.utime(young, (old, old))
        assert remove_stale_tmp_files(tmp_path) == [young]

    def test_non_tmp_files_untouched(self, tmp_path):
        keeper = tmp_path / "real.json"
        keeper.write_text("{}")
        dead = tmp_path / "real.json.999999999.tmp"
        dead.write_text("{")
        remove_stale_tmp_files(tmp_path)
        assert keeper.exists()

    def test_not_recursive(self, tmp_path):
        sub = tmp_path / "sub"
        sub.mkdir()
        nested = sub / "cache.json.999999999.tmp"
        nested.write_text("{")
        assert remove_stale_tmp_files(tmp_path) == []
        assert nested.exists()
