"""Tests asserting each synthetic generator reproduces its structural class."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.matrices import analyze, block_fill, diag_fill, run_lengths
from repro.matrices import generators as g


class TestDense:
    def test_full(self):
        coo = g.dense(20)
        assert coo.nnz == 400
        assert block_fill(coo, 2, 4) == 1.0

    def test_rectangular(self):
        coo = g.dense(4, 7)
        assert coo.shape == (4, 7)
        assert coo.nnz == 28


class TestRandomUniform:
    def test_size_and_determinism(self):
        a = g.random_uniform(1000, 1000, 5000, seed=1)
        b = g.random_uniform(1000, 1000, 5000, seed=1)
        assert a == b
        assert a.nnz == 5000

    def test_no_blockability(self):
        coo = g.random_uniform(2000, 2000, 8000, seed=2)
        assert block_fill(coo, 2, 2) < 0.3  # blocks are nearly all singletons

    def test_different_seeds_differ(self):
        assert g.random_uniform(100, 100, 300, seed=1) != g.random_uniform(
            100, 100, 300, seed=2
        )


class TestGrids:
    def test_grid2d_5pt_interior_degree(self):
        coo = g.grid2d(10, 10, 5)
        counts = coo.row_counts()
        assert counts.max() == 5
        assert counts.min() == 3  # corners

    def test_grid2d_9pt(self):
        coo = g.grid2d(8, 8, 9)
        assert coo.row_counts().max() == 9

    def test_grid2d_dof_blocks_perfectly_dense(self):
        coo = g.grid2d(12, 12, 5, dof=3)
        assert block_fill(coo, 3, 3) == 1.0  # the BCSR sweet spot

    def test_grid2d_dof_shape(self):
        coo = g.grid2d(6, 7, 5, dof=2)
        assert coo.shape == (84, 84)

    def test_grid3d_7pt_is_pure_diagonals(self):
        coo = g.grid3d(8, 8, 8, 7)
        offsets = np.unique(coo.cols - coo.rows)
        assert set(offsets.tolist()) == {-64, -8, -1, 0, 1, 8, 64}

    def test_grid3d_27pt_degree(self):
        coo = g.grid3d(6, 6, 6, 27)
        assert coo.row_counts().max() == 27

    def test_grid_rejects_unknown_stencil(self):
        with pytest.raises(FormatError):
            g.grid2d(4, 4, 7)
        with pytest.raises(FormatError):
            g.grid3d(4, 4, 4, 9)

    def test_symmetry(self):
        coo = g.grid2d(9, 9, 5)
        dense = np.zeros(coo.shape)
        dense[coo.rows, coo.cols] = 1.0
        np.testing.assert_array_equal(dense, dense.T)


class TestPowerlaw:
    def test_column_degrees_skewed(self):
        coo = g.powerlaw_graph(20_000, 100_000, alpha=1.8, seed=3)
        col_counts = np.bincount(coo.cols, minlength=coo.ncols)
        top = np.sort(col_counts)[-20:]
        # the hottest 20 columns hold far more than 20/n of the mass
        assert top.sum() > 0.05 * coo.nnz

    def test_rejects_alpha_below_one(self):
        with pytest.raises(FormatError):
            g.powerlaw_graph(100, 100, alpha=0.9)


class TestCircuit:
    def test_has_full_diagonal(self):
        coo = g.circuit(5000, seed=4)
        on_diag = (coo.rows == coo.cols).sum()
        assert on_diag == 5000

    def test_short_rows(self):
        coo = g.circuit(20_000, avg_offdiag=2.0, seed=5)
        stats = analyze(coo)
        assert stats.row_mean < 8


class TestLinearProgramming:
    def test_wide_shape(self):
        coo = g.linear_programming(1000, 5000, 8000, run_len=4, seed=6)
        assert coo.shape == (1000, 5000)

    def test_hyper_sparse_rows(self):
        coo = g.linear_programming(50_000, 800, 30_000, run_len=1, seed=7)
        assert coo.nnz < coo.nrows  # fewer nonzeros than rows (rail4284)

    def test_runs_give_vbl_blocks(self):
        coo = g.linear_programming(2000, 50_000, 40_000, run_len=8, seed=8)
        assert run_lengths(coo).mean() > 4


class TestClusteredRows:
    def test_run_lengths_in_range(self):
        coo = g.clustered_rows(3000, 3000, 40_000, (5, 10), seed=9)
        runs = run_lengths(coo)
        # merged/truncated runs shift the mean but it stays in the band
        assert 3.0 < runs.mean() < 12.0

    def test_rejects_bad_range(self):
        with pytest.raises(FormatError):
            g.clustered_rows(100, 100, 1000, (5, 3))


class TestDiagonalPattern:
    def test_full_fill_perfect_bcsd(self):
        coo = g.diagonal_pattern(1200, (0, 1, -1), fill=1.0)
        assert diag_fill(coo, 4) > 0.98

    def test_ragged_fill(self):
        coo = g.diagonal_pattern(5000, (0, 7, -7), fill=0.9, seed=10)
        assert 0.80 < diag_fill(coo, 4) < 0.99
        assert block_fill(coo, 2, 2) < 0.5  # bad for rectangular blocks

    def test_rejects_bad_fill(self):
        with pytest.raises(FormatError):
            g.diagonal_pattern(100, (0,), fill=0.0)


class TestTransforms:
    def test_shuffled_preserves_row_length_distribution(self):
        mesh = g.grid2d(40, 40, 5)
        perm = g.shuffled(mesh, seed=11)
        assert perm.nnz == mesh.nnz
        assert sorted(mesh.row_counts().tolist()) == sorted(
            perm.row_counts().tolist()
        )

    def test_shuffled_destroys_runs(self):
        mesh = g.grid2d(40, 40, 9)
        perm = g.shuffled(mesh, seed=12)
        assert run_lengths(perm).mean() < run_lengths(mesh).mean()

    def test_partial_shuffle_preserves_bandwidth(self):
        mesh = g.grid2d(60, 60, 5)
        part = g.partially_shuffled(mesh, window=64, seed=13)
        assert analyze(part).bandwidth <= analyze(mesh).bandwidth + 2 * 64

    def test_expand_dof_counts(self):
        rows, cols = g.expand_dof(np.array([0, 1]), np.array([1, 0]), 3)
        assert rows.shape[0] == 2 * 9

    def test_banded_random_band_dominates(self):
        coo = g.banded_random(50_000, 300_000, bandwidth=500,
                              local_fraction=0.8, seed=14)
        near = (np.abs(coo.cols - coo.rows) <= 500).mean()
        assert near > 0.7

    def test_random_values_deterministic(self):
        coo = g.grid2d(10, 10, 5)
        a = g.random_values(coo, seed=15)
        b = g.random_values(coo, seed=15)
        assert a == b
        assert a.has_values
