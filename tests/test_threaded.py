"""Tests for real multithreaded SpMV (row-block slices + thread pool)."""

import numpy as np
import pytest

from repro.errors import FormatError, ModelError
from repro.formats import COOMatrix, build_format
from repro.parallel.threaded import ThreadedSpMV, row_block_slice

from .conftest import make_random_coo


@pytest.fixture(scope="module")
def coo():
    rng = np.random.default_rng(71)
    n, m, nnz = 600, 500, 8000
    return COOMatrix(
        n, m, rng.integers(0, n, nnz), rng.integers(0, m, nnz),
        rng.standard_normal(nnz),
    )


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(72).standard_normal(coo.ncols)


class TestRowBlockSlice:
    @pytest.mark.parametrize("kind,block,height", [
        ("csr", None, 1), ("bcsr", (3, 2), 3), ("bcsd", 4, 4),
        ("vbl", None, 1),
    ])
    def test_slices_partition_the_product(self, coo, x, kind, block, height):
        fmt = build_format(coo, kind, block)
        full = fmt.spmv(x)
        n_rows = fmt.n_block_rows
        cut = n_rows // 3
        for lo, hi in [(0, cut), (cut, n_rows)]:
            piece = row_block_slice(fmt, lo, hi)
            seg = piece.spmv(x)
            start = lo * height
            np.testing.assert_allclose(
                seg, full[start : start + seg.shape[0]], atol=1e-12
            )

    def test_empty_slice(self, coo, x):
        fmt = build_format(coo, "csr")
        piece = row_block_slice(fmt, 5, 5)
        assert piece.nrows == 0
        assert piece.spmv(x).shape == (0,)

    def test_shares_memory(self, coo):
        fmt = build_format(coo, "csr")
        piece = row_block_slice(fmt, 0, 10)
        assert np.shares_memory(piece.col_ind, fmt.col_ind)
        assert np.shares_memory(piece.values, fmt.values)

    def test_bounds_checked(self, coo):
        fmt = build_format(coo, "csr")
        with pytest.raises(ModelError):
            row_block_slice(fmt, -1, 5)
        with pytest.raises(ModelError):
            row_block_slice(fmt, 0, fmt.n_block_rows + 1)

    def test_unsupported_kind(self, coo):
        fmt = build_format(coo, "vbr")
        with pytest.raises(ModelError):
            row_block_slice(fmt, 0, 1)

    def test_last_slice_row_overhang(self):
        """A BCSR slice ending at the ragged last block row keeps the true
        row count."""
        coo = make_random_coo(10, 8, 40, seed=73)
        fmt = build_format(coo, "bcsr", (3, 2))
        piece = row_block_slice(fmt, 2, fmt.n_block_rows)
        assert piece.nrows == 10 - 6  # rows 6..9


class TestThreadedSpMV:
    @pytest.mark.parametrize("kind,block", [
        ("csr", None), ("bcsr", (3, 2)), ("bcsr_dec", (2, 2)),
        ("bcsd", 4), ("bcsd_dec", 3), ("vbl", None),
    ])
    @pytest.mark.parametrize("nthreads", [1, 2, 4])
    def test_matches_sequential(self, coo, x, kind, block, nthreads):
        fmt = build_format(coo, kind, block)
        mv = ThreadedSpMV(fmt, nthreads)
        np.testing.assert_allclose(mv(x), fmt.spmv(x), atol=1e-10)

    def test_reusable_and_accumulating(self, coo, x):
        fmt = build_format(coo, "bcsr", (2, 2))
        mv = ThreadedSpMV(fmt, 2)
        base = np.ones(coo.nrows)
        out = mv(x, out=base.copy())
        np.testing.assert_allclose(out, 1.0 + fmt.spmv(x), atol=1e-10)
        # Second application with the same plan.
        np.testing.assert_allclose(mv(x), fmt.spmv(x), atol=1e-10)

    def test_more_threads_than_rows(self, x):
        coo = make_random_coo(3, 500, 30, seed=74)
        fmt = build_format(coo, "csr")
        mv = ThreadedSpMV(fmt, 8)
        np.testing.assert_allclose(mv(x), fmt.spmv(x), atol=1e-12)

    def test_rejects_structure_only(self, coo):
        fmt = build_format(coo, "csr", with_values=False)
        with pytest.raises(FormatError):
            ThreadedSpMV(fmt, 2)

    def test_rejects_bad_inputs(self, coo, x):
        fmt = build_format(coo, "csr")
        with pytest.raises(ModelError):
            ThreadedSpMV(fmt, 0)
        mv = ThreadedSpMV(fmt, 2)
        with pytest.raises(FormatError):
            mv(np.ones(coo.ncols + 1))

    def test_solver_integration(self):
        """CG driven by the threaded SpMV converges identically."""
        from repro.matrices.generators import grid2d
        from repro.solvers import cg

        stencil = grid2d(16, 16, 5)
        A = stencil.with_values(
            np.where(stencil.rows == stencil.cols, 4.0, -1.0)
        )
        fmt = build_format(A, "csr")
        mv = ThreadedSpMV(fmt, 2)

        class _Wrapper:
            nrows = ncols = A.nrows
            has_values = True

            @staticmethod
            def spmv(x, out=None):
                return mv(x, out=out)

            @staticmethod
            def diagonal():
                return fmt.diagonal()

        rng = np.random.default_rng(75)
        x_true = rng.standard_normal(A.nrows)
        b = A.to_dense() @ x_true
        res = cg(_Wrapper, b, tol=1e-10, max_iter=2000)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)
