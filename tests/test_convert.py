"""Tests for the conversion registry and its error paths."""

import pytest

from repro.errors import ConversionError
from repro.formats import FORMAT_KINDS, build_format, display_name

from .conftest import make_random_coo


@pytest.fixture()
def coo():
    return make_random_coo(24, 24, 100, seed=91)


class TestRegistry:
    def test_all_kinds_listed(self):
        assert set(FORMAT_KINDS) == {
            "csr", "bcsr", "bcsr_dec", "bcsd", "bcsd_dec", "vbl",
            "ubcsr", "vbr", "csr_du",
        }

    def test_display_names(self):
        assert display_name("bcsr_dec") == "BCSR-DEC"
        assert display_name("vbl") == "1D-VBL"
        with pytest.raises(ConversionError):
            display_name("csc")

    def test_unknown_kind(self, coo):
        with pytest.raises(ConversionError):
            build_format(coo, "ellpack")


class TestParameterValidation:
    def test_csr_rejects_block(self, coo):
        with pytest.raises(ConversionError):
            build_format(coo, "csr", (2, 2))

    def test_vbl_rejects_block(self, coo):
        with pytest.raises(ConversionError):
            build_format(coo, "vbl", 4)

    def test_bcsr_requires_pair(self, coo):
        with pytest.raises(ConversionError):
            build_format(coo, "bcsr")
        with pytest.raises(ConversionError):
            build_format(coo, "bcsr", 4)

    def test_bcsd_requires_int(self, coo):
        with pytest.raises(ConversionError):
            build_format(coo, "bcsd")
        with pytest.raises(ConversionError):
            build_format(coo, "bcsd", (2, 2))

    def test_blockshape_accepted(self, coo):
        from repro.types import BlockShape

        fmt = build_format(coo, "bcsr", BlockShape(2, 2), with_values=False)
        assert fmt.block.elems == 4

    @pytest.mark.parametrize("kind", FORMAT_KINDS)
    def test_structure_only_has_no_values(self, coo, kind):
        block = {
            "bcsr": (2, 2), "bcsr_dec": (2, 2), "ubcsr": (2, 2),
            "bcsd": 3, "bcsd_dec": 3,
        }.get(kind)
        fmt = build_format(coo, kind, block, with_values=False)
        assert not fmt.has_values
