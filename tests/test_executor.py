"""Tests for the execution simulator."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.formats import COOMatrix, build_format
from repro.machine import CORE2_XEON, simulate
from repro.matrices.generators import grid2d, random_uniform, shuffled

from .conftest import make_random_coo


@pytest.fixture(scope="module")
def fem():
    """A blockable mesh matrix larger than L2 (dof=3 blocks)."""
    return grid2d(110, 110, 5, dof=3)


@pytest.fixture(scope="module")
def random_big():
    """A scattered matrix larger than L2 with a big x footprint."""
    return random_uniform(400_000, 400_000, 900_000, seed=99)


class TestBasicInvariants:
    def test_breakdown_adds_up(self, fem, machine):
        csr = build_format(fem, "csr", with_values=False)
        res = simulate(csr, machine, "dp", "scalar")
        assert res.t_total >= res.t_mem
        assert res.t_total >= res.t_comp_exposed
        assert res.t_total == pytest.approx(
            max(res.t_mem, res.t_comp - res.t_comp_exposed)
            + res.t_comp_exposed
            + res.t_latency
        )

    def test_sp_faster_than_dp_when_memory_bound(self, fem, machine):
        csr = build_format(fem, "csr", with_values=False)
        t_sp = simulate(csr, machine, "sp", "scalar").t_total
        t_dp = simulate(csr, machine, "dp", "scalar").t_total
        assert t_sp < t_dp  # smaller working set

    def test_rejects_bad_threads(self, fem, machine):
        csr = build_format(fem, "csr", with_values=False)
        with pytest.raises(ModelError):
            simulate(csr, machine, "dp", "scalar", nthreads=0)
        with pytest.raises(ModelError):
            simulate(csr, machine, "dp", "scalar", nthreads=99)

    def test_deterministic(self, fem, machine):
        bcsr = build_format(fem, "bcsr", (3, 3), with_values=False)
        a = simulate(bcsr, machine, "dp", "scalar").t_total
        b = simulate(bcsr, machine, "dp", "scalar").t_total
        assert a == b


class TestPaperPhenomena:
    def test_blocking_wins_on_fem(self, fem, machine):
        """3x3 node blocks shrink col_ind 9x: BCSR must beat CSR."""
        csr = build_format(fem, "csr", with_values=False)
        bcsr = build_format(fem, "bcsr", (3, 3), with_values=False)
        assert bcsr.padding_ratio < 1.05
        t_csr = simulate(csr, machine, "dp", "scalar").t_total
        t_bcsr = simulate(bcsr, machine, "dp", "scalar").t_total
        assert t_bcsr < t_csr

    def test_padding_blowup_loses_on_random(self, machine):
        coo = random_uniform(60_000, 60_000, 600_000, seed=1)
        csr = build_format(coo, "csr", with_values=False)
        bcsr = build_format(coo, "bcsr", (2, 4), with_values=False)
        assert bcsr.padding_ratio > 4.0
        t_csr = simulate(csr, machine, "dp", "scalar").t_total
        t_bcsr = simulate(bcsr, machine, "dp", "scalar").t_total
        assert t_bcsr > 2.0 * t_csr

    def test_decomposed_tracks_csr_on_random(self, machine):
        coo = random_uniform(60_000, 60_000, 600_000, seed=1)
        csr = build_format(coo, "csr", with_values=False)
        dec = build_format(coo, "bcsr_dec", (2, 2), with_values=False)
        t_csr = simulate(csr, machine, "dp", "scalar").t_total
        t_dec = simulate(dec, machine, "dp", "scalar").t_total
        assert t_dec == pytest.approx(t_csr, rel=0.1)

    def test_irregular_matrix_pays_latency(self, random_big, machine):
        csr = build_format(random_big, "csr", with_values=False)
        res = simulate(csr, machine, "dp", "scalar")
        assert res.x_misses > 0
        assert res.t_latency > 0

    def test_regular_matrix_pays_no_latency(self, fem, machine):
        csr = build_format(fem, "csr", with_values=False)
        res = simulate(csr, machine, "dp", "scalar")
        assert res.t_latency == 0.0

    def test_zero_col_ind_removes_latency(self, random_big, machine):
        """The paper's custom benchmark: zeroing col_ind doubles(+) speed
        on latency-bound matrices."""
        csr = build_format(random_big, "csr", with_values=False)
        normal = simulate(csr, machine, "dp", "scalar")
        zeroed = simulate(csr, machine, "dp", "scalar", zero_col_ind=True)
        assert zeroed.t_latency == 0.0
        assert normal.t_total > 1.3 * zeroed.t_total

    def test_shuffled_mesh_slower_than_mesh(self, machine):
        mesh = grid2d(640, 640, 5)
        perm = shuffled(mesh, seed=5)
        t_mesh = simulate(
            build_format(mesh, "csr", with_values=False), machine, "dp"
        ).t_total
        t_perm = simulate(
            build_format(perm, "csr", with_values=False), machine, "dp"
        ).t_total
        assert t_perm > t_mesh

    def test_small_matrix_streams_from_cache(self, machine):
        coo = make_random_coo(40, 40, 800, seed=2, with_values=False)
        csr = build_format(coo, "csr", with_values=False)
        res = simulate(csr, machine, "dp", "scalar")
        # ws fits L1: memory streams at L1 bandwidth, so the kernel is
        # compute-bound and pays no x-miss latency — the regime the paper's
        # t_b profiling relies on.
        assert res.ws_bytes <= machine.l1.size_bytes
        assert res.bound == "compute"
        assert res.t_latency == 0.0


class TestMulticore:
    def test_speedup_with_threads(self, fem, machine):
        bcsr = build_format(fem, "bcsr", (3, 3), with_values=False)
        t1 = simulate(bcsr, machine, "dp", "scalar", nthreads=1).t_total
        t2 = simulate(bcsr, machine, "dp", "scalar", nthreads=2).t_total
        t4 = simulate(bcsr, machine, "dp", "scalar", nthreads=4).t_total
        assert t2 < t1
        assert t4 <= t2 * 1.01  # saturation may flatten, never degrade much

    def test_bandwidth_bound_saturates(self, fem, machine):
        """Once the FSB saturates, more cores stop helping (the paper's
        multicore motif)."""
        csr = build_format(fem, "csr", with_values=False)
        t2 = simulate(csr, machine, "dp", "scalar", nthreads=2).t_total
        t4 = simulate(csr, machine, "dp", "scalar", nthreads=4).t_total
        floor = csr.working_set("dp") / machine.memory_bandwidth(4)
        assert t4 >= floor
        assert abs(t4 - t2) / t2 < 0.25

    def test_result_metadata(self, fem, machine):
        csr = build_format(fem, "csr", with_values=False)
        res = simulate(csr, machine, "sp", "scalar", nthreads=2)
        assert res.nthreads == 2
        assert res.precision.value == "sp"
        assert res.impl.value == "scalar"
