"""Tests for the sweep harness and the table/figure projections.

A miniature 4-matrix suite keeps the sweep fast while covering the
structural extremes (blockable FEM, diagonal, random, dense).
"""

import pytest

from repro.bench import (
    SweepConfig,
    SweepResult,
    colind_zero,
    figure2,
    figure3,
    figure4,
    run_sweep,
    table2,
    table3,
    table4,
)
from repro.bench.report import render_series, render_table
from repro.matrices import generators as g
from repro.matrices.suite import SuiteEntry


def _entry(idx, name, special, geometry, builder):
    return SuiteEntry(
        idx=idx, name=name, domain="test", geometry=geometry,
        special=special, paper_rows=1, paper_nnz=1, paper_ws_mib=1.0,
        builder=builder, note="test entry",
    )


MINI_SUITE = (
    _entry(1, "mini-dense", True, False, lambda: g.dense(120)),
    _entry(2, "mini-random", True, False,
           lambda: g.random_uniform(4000, 4000, 30_000, seed=1)),
    _entry(3, "mini-fem", False, True, lambda: g.grid2d(40, 40, 5, dof=3)),
    _entry(4, "mini-diag", False, True,
           lambda: g.diagonal_pattern(6000, (0, 1, -1, 40, -40), 0.95,
                                      seed=2)),
)


@pytest.fixture(scope="module")
def mini_sweep():
    config = SweepConfig(precisions=("sp", "dp"), thread_counts=(1, 2, 4))
    return run_sweep(MINI_SUITE, config)


class TestSweepData:
    def test_all_matrices_present(self, mini_sweep):
        assert [m.name for m in mini_sweep.matrices] == [
            e.name for e in MINI_SUITE
        ]

    def test_record_counts(self, mini_sweep):
        m = mini_sweep.matrix("mini-fem")
        # 106 candidates single-threaded, 105 (no VBL) for 2 and 4 threads,
        # times two precisions.
        assert len(m.select(precision="dp", nthreads=1)) == 106
        assert len(m.select(precision="dp", nthreads=2)) == 105
        assert len(m.records) == 2 * (106 + 105 + 105)

    def test_predictions_only_single_thread(self, mini_sweep):
        m = mini_sweep.matrix("mini-fem")
        assert all(r.predictions for r in m.select(nthreads=1)
                   if r.kind != "vbl")
        assert all(not r.predictions for r in m.select(nthreads=2))

    def test_matrix_lookup(self, mini_sweep):
        assert mini_sweep.matrix(3).name == "mini-fem"
        with pytest.raises(KeyError):
            mini_sweep.matrix("nope")

    def test_save_load_round_trip(self, mini_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        mini_sweep.save(path)
        loaded = SweepResult.load(path)
        assert loaded.config == mini_sweep.config
        orig = mini_sweep.matrix("mini-fem").records
        back = loaded.matrix("mini-fem").records
        assert len(orig) == len(back)
        assert orig[0] == back[0]
        assert back[5].candidate == orig[5].candidate

    def test_fingerprint_stable(self):
        a = SweepConfig().fingerprint()
        b = SweepConfig().fingerprint()
        c = SweepConfig(max_block_elems=6).fingerprint()
        assert a == b != c


class TestProjections:
    def test_table2_counts_sum(self, mini_sweep):
        result = table2(mini_sweep)
        n_regular = sum(1 for m in mini_sweep.matrices if not m.special)
        for cfg, counts in result.wins.items():
            total = sum(v for v in counts.values() if v is not None)
            assert total == n_regular, cfg
        assert "1D-VBL" in result.render()

    def test_table2_fem_goes_to_blocking(self, mini_sweep):
        """On a suite of blockable matrices, CSR cannot win everything."""
        result = table2(mini_sweep)
        assert result.wins["dp"].get("csr", 0) < 2

    def test_table3_structure(self, mini_sweep):
        result = table3(mini_sweep)
        assert len(result.rows) == 4  # all matrices, specials included
        assert result.averages[0] == "Average"
        rendered = result.render()
        assert "BCSR min" in rendered

    def test_table3_min_le_max(self, mini_sweep):
        for row in table3(mini_sweep).rows:
            for base in (1, 4, 7, 10):
                lo, avg, hi = (float(row[base + i]) for i in range(3))
                assert lo <= avg + 0.005 and avg <= hi + 0.005

    def test_figure2_counts(self, mini_sweep):
        result = figure2(mini_sweep)
        n_regular = sum(1 for m in mini_sweep.matrices if not m.special)
        assert set(result.wins) == {
            f"{p}-{c}c" for p in ("sp", "dp") for c in (1, 2, 4)
        }
        for counts in result.wins.values():
            assert sum(counts.values()) == n_regular
            assert "vbl" not in counts

    def test_figure3_models_ordered(self, mini_sweep):
        for precision in ("sp", "dp"):
            result = figure3(mini_sweep, precision)
            assert len(result.matrix_ids) == 2  # specials excluded
            for i in range(len(result.matrix_ids)):
                assert (
                    result.normalized["mem"][i]
                    <= result.normalized["overlap"][i] + 1e-9
                )
                assert (
                    result.normalized["overlap"][i]
                    <= result.normalized["memcomp"][i] + 1e-9
                )
            assert "abs(t_mem" in result.render()

    def test_figure4_normalized_ge_one(self, mini_sweep):
        for precision in ("sp", "dp"):
            result = figure4(mini_sweep, precision)
            for model, values in result.normalized.items():
                assert all(v >= 1.0 - 1e-12 for v in values), model

    def test_table4_structure(self, mini_sweep):
        result = table4(mini_sweep)
        assert [row[0] for row in result.rows] == [
            "MEM", "MEMCOMP", "OVERLAP"
        ]
        n_regular = 2
        for row in result.rows:
            assert 0 <= int(row[1]) <= n_regular
            assert 0 <= int(row[3]) <= n_regular
        assert "off-best" in result.render()


class TestColindZero:
    def test_runs_on_selected_matrices(self):
        result = colind_zero(matrix_ids=(12,))
        assert len(result.rows) == 1
        assert "wikipedia" in result.rows[0][0]
        speedup = float(result.rows[0][3].rstrip("x"))
        assert speedup > 1.3  # latency-bound matrix gains a lot
        assert "col_ind=0" in result.render()


class TestExport:
    def test_figure_data_files(self, mini_sweep, tmp_path):
        from repro.bench.export import export_figure_data

        written = export_figure_data(mini_sweep, tmp_path / "figs")
        assert len(written) == 5
        for path in written:
            assert path.exists()
            lines = path.read_text().strip().splitlines()
            assert len(lines) >= 2  # header + data
            assert len(lines[0].split("\t")) >= 4

    def test_fig3_tsv_values_match(self, mini_sweep, tmp_path):
        from repro.bench.export import export_figure_data
        from repro.bench.experiments import figure3

        export_figure_data(mini_sweep, tmp_path)
        f3 = figure3(mini_sweep, "dp")
        lines = (tmp_path / "figure3_dp.tsv").read_text().strip().splitlines()
        first = lines[1].split("\t")
        assert int(first[0]) == f3.matrix_ids[0]
        assert abs(float(first[1]) - f3.normalized["mem"][0]) < 1e-5


class TestReportRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[2]) for l in lines[2:4])

    def test_render_series_handles_none(self):
        out = render_series("x", [1, 2], {"s": [1.0, None]})
        assert "-" in out


class TestPartialSweepWarning:
    @pytest.fixture()
    def partial_sweep(self, mini_sweep):
        import dataclasses

        return dataclasses.replace(mini_sweep, missing=[2, 17])

    def test_complete_sweep_renders_clean(self, mini_sweep, capsys):
        rendered = table2(mini_sweep).render()
        assert "PARTIAL SWEEP" not in rendered
        assert "PARTIAL SWEEP" not in capsys.readouterr().err

    def test_footnote_and_stderr_banner(self, partial_sweep, capsys):
        rendered = table2(partial_sweep).render()
        assert "PARTIAL SWEEP" in rendered
        assert "2, 17" in rendered
        err = capsys.readouterr().err
        assert "PARTIAL SWEEP" in err
        assert "!!!" in err

    def test_every_projection_warns(self, partial_sweep, capsys):
        results = [
            table2(partial_sweep),
            table3(partial_sweep),
            table4(partial_sweep),
            figure2(partial_sweep),
            figure3(partial_sweep, "dp"),
            figure4(partial_sweep, "dp"),
        ]
        for result in results:
            assert "PARTIAL SWEEP" in result.render(), type(result).__name__
        assert capsys.readouterr().err.count("PARTIAL SWEEP") == len(results)

    def test_warn_if_partial_helpers(self, capsys):
        from repro.bench.report import missing_note, warn_if_partial

        assert missing_note(()) is None
        assert warn_if_partial(()) == ""
        assert capsys.readouterr().err == ""
        note = missing_note([9, 3])
        assert "3, 9" in note
        footnote = warn_if_partial([3])
        assert footnote.startswith("\n* ")
        assert "PARTIAL SWEEP" in capsys.readouterr().err
