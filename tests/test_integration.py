"""End-to-end integration tests spanning the whole stack."""

import numpy as np
import pytest

from repro import (
    AutoTuner,
    CORE2_XEON,
    GENERIC_MODERN,
    build_format,
    simulate,
)
from repro.core import evaluate_candidates, oracle_best, select_with_model
from repro.matrices import generators as g
from repro.matrices import read_matrix_market, write_matrix_market


class TestAutotuneAndMultiply:
    """Generate -> select -> build -> multiply -> verify, per matrix class."""

    @pytest.mark.parametrize("builder,expect_blocked", [
        (lambda: g.grid2d(40, 40, 5, dof=3), True),
        (lambda: g.diagonal_pattern(4000, (0, 1, -1, 63, -63), 0.97), True),
        (lambda: g.random_uniform(3000, 3000, 20_000, seed=5), None),
    ])
    def test_full_cycle(self, builder, expect_blocked):
        coo = g.random_values(builder(), seed=8)
        tuner = AutoTuner(CORE2_XEON)
        choice = tuner.select(coo, precision="dp", model="overlap")
        if expect_blocked is True:
            assert choice.candidate.kind != "csr"
        fmt = tuner.build(coo, choice.candidate)
        x = np.random.default_rng(9).standard_normal(coo.ncols)
        np.testing.assert_allclose(
            fmt.spmv(x), coo.to_dense() @ x, rtol=1e-9, atol=1e-9
        )

    def test_selection_close_to_oracle_on_mesh(self):
        coo = g.grid2d(110, 110, 5, dof=3, drop_fraction=0.2, seed=10)
        results = evaluate_candidates(coo, CORE2_XEON, "dp")
        best = oracle_best(results)
        sel = select_with_model(results, "overlap")
        assert sel.t_real <= best.t_real * 1.10


class TestDifferentMachines:
    def test_modern_machine_changes_tradeoffs(self):
        """A machine with ample bandwidth shifts selection toward
        compute-friendly configurations; the API carries through."""
        coo = g.grid2d(60, 60, 9, dof=3, drop_fraction=0.2, seed=11)
        for machine in (CORE2_XEON, GENERIC_MODERN):
            tuner = AutoTuner(machine)
            choice = tuner.select(coo, precision="sp", model="overlap")
            assert choice.ws_bytes > 0

    def test_ablated_machine_still_simulates(self):
        quiet = CORE2_XEON.with_overrides(latency_hide=1.0)
        fmt = build_format(
            g.random_uniform(200_000, 200_000, 600_000, seed=12),
            "csr",
            with_values=False,
        )
        res = simulate(fmt, quiet, "dp", "scalar")
        assert res.t_latency == 0.0  # all latency hidden


class TestFilePipeline:
    def test_mtx_to_selection(self, tmp_path):
        """Matrix Market file in, tuned format out."""
        coo = g.random_values(
            g.clustered_rows(2000, 2000, 16_000, (3, 9), seed=13), seed=14
        )
        path = tmp_path / "m.mtx"
        write_matrix_market(path, coo)
        loaded = read_matrix_market(path)
        assert loaded == coo
        tuner = AutoTuner(CORE2_XEON)
        choice = tuner.select(loaded, precision="dp", model="memcomp")
        fmt = tuner.build(loaded, choice.candidate)
        x = np.ones(loaded.ncols)
        np.testing.assert_allclose(
            fmt.spmv(x), loaded.to_dense() @ x, rtol=1e-9, atol=1e-9
        )


class TestNumericalConsistencyAcrossFormats:
    def test_all_formats_agree_bitwise_tolerance(self):
        """Every format computes the same y on the same operands."""
        coo = g.random_values(
            g.grid2d(25, 25, 9, dof=2, drop_fraction=0.3, seed=15), seed=16
        )
        x = np.random.default_rng(17).standard_normal(coo.ncols)
        reference = None
        for kind, block in [
            ("csr", None), ("bcsr", (2, 2)), ("bcsr_dec", (2, 2)),
            ("bcsd", 3), ("bcsd_dec", 3), ("vbl", None),
            ("ubcsr", (2, 3)), ("vbr", None),
        ]:
            y = build_format(coo, kind, block).spmv(x)
            if reference is None:
                reference = y
            else:
                np.testing.assert_allclose(y, reference, rtol=1e-9, atol=1e-9)
