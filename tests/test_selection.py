"""Tests for candidate enumeration and autotuned selection."""

import numpy as np
import pytest

from repro.core import (
    AutoTuner,
    Candidate,
    candidate_space,
    evaluate_candidates,
    oracle_best,
    select_with_model,
)
from repro.core.candidates import diag_sizes, rect_shapes
from repro.core.selection import StatsCache, build_candidate
from repro.errors import ModelError
from repro.matrices.generators import grid2d, random_values
from repro.types import Impl


@pytest.fixture(scope="module")
def fem():
    return grid2d(110, 110, 5, dof=3)


class TestCandidateSpace:
    def test_rect_shapes_respect_paper_cap(self):
        shapes = rect_shapes(8)
        assert len(shapes) == 19
        assert all(2 <= s.elems <= 8 for s in shapes)
        assert (1, 1) not in [(s.r, s.c) for s in shapes]

    def test_diag_sizes(self):
        assert diag_sizes(8) == [2, 3, 4, 5, 6, 7, 8]

    def test_full_space_count(self):
        space = candidate_space()
        # CSR + (19 rect x 2 kinds x 2 impls) + (7 diag x 2 kinds x 2 impls)
        # + 1D-VBL
        assert len(space) == 1 + 19 * 2 * 2 + 7 * 2 * 2 + 1

    def test_csr_and_vbl_scalar_only(self):
        space = candidate_space()
        for cand in space:
            if cand.kind in ("csr", "vbl"):
                assert cand.impl is Impl.SCALAR

    def test_exclusions(self):
        space = candidate_space(include_vbl=False, include_decomposed=False,
                                impls=(Impl.SCALAR,))
        kinds = {c.kind for c in space}
        assert kinds == {"csr", "bcsr", "bcsd"}
        assert all(c.impl is Impl.SCALAR for c in space)

    def test_candidate_validation(self):
        with pytest.raises(ModelError):
            Candidate("csr", (2, 2), Impl.SCALAR)
        with pytest.raises(ModelError):
            Candidate("vbl", None, Impl.SIMD)
        with pytest.raises(ModelError):
            Candidate("bcsr", 4, Impl.SCALAR)
        with pytest.raises(ModelError):
            Candidate("bcsd", (2, 2), Impl.SCALAR)
        with pytest.raises(ModelError):
            Candidate("cso", None, Impl.SCALAR)

    def test_labels(self):
        assert Candidate("bcsr", (2, 4), Impl.SIMD).label == "BCSR 2x4 simd"
        assert Candidate("bcsd_dec", 3, Impl.SCALAR).label == "BCSD-DEC 3"
        assert Candidate("csr", None, Impl.SCALAR).label == "CSR"


class TestBuildCandidate:
    @pytest.mark.parametrize("cand", [
        Candidate("csr", None, Impl.SCALAR),
        Candidate("bcsr", (2, 3), Impl.SCALAR),
        Candidate("bcsr_dec", (2, 3), Impl.SIMD),
        Candidate("bcsd", 4, Impl.SCALAR),
        Candidate("bcsd_dec", 4, Impl.SIMD),
        Candidate("vbl", None, Impl.SCALAR),
    ])
    def test_kinds_map_to_formats(self, small_coo, cand):
        fmt = build_candidate(small_coo, cand)
        assert fmt.nnz == small_coo.nnz

    def test_stats_cache_shared(self, small_coo):
        cache = StatsCache(small_coo)
        build_candidate(
            small_coo, Candidate("bcsr", (2, 2), Impl.SCALAR),
            stats_cache=cache,
        )
        assert (2, 2) in cache._rect
        build_candidate(
            small_coo, Candidate("bcsr_dec", (2, 2), Impl.SCALAR),
            stats_cache=cache,
        )
        assert len(cache._rect) == 1  # reused, not recomputed


class TestEvaluation:
    def test_predictions_and_sim_populated(self, fem, machine):
        results = evaluate_candidates(
            fem, machine, "dp",
            candidates=candidate_space(impls=(Impl.SCALAR,)),
        )
        assert len(results) == 1 + 19 * 2 + 7 * 2 + 1
        for res in results:
            assert res.sim is not None
            assert res.t_real > 0
            if res.candidate.kind == "vbl":
                assert "overlap" not in res.predictions
                assert "mem" in res.predictions
            else:
                assert set(res.predictions) == {"mem", "memcomp", "overlap"}

    def test_selection_rules(self, fem, machine):
        results = evaluate_candidates(fem, machine, "dp")
        mem_sel = select_with_model(results, "mem")
        assert mem_sel.candidate.impl is Impl.SCALAR  # MEM defaults non-simd
        overlap_sel = select_with_model(results, "overlap")
        best = oracle_best(results)
        # OVERLAP must land within 10% of the oracle on this matrix.
        assert overlap_sel.t_real <= best.t_real * 1.10

    def test_oracle_requires_simulation(self, fem, machine):
        results = evaluate_candidates(
            fem, machine, "dp", run_simulation=False,
            candidates=candidate_space(impls=(Impl.SCALAR,)),
        )
        with pytest.raises(ModelError):
            oracle_best(results)

    def test_fmt_cache_reused_across_calls(self, fem, machine):
        cache = {}
        evaluate_candidates(
            fem, machine, "dp", fmt_cache=cache,
            candidates=candidate_space(impls=(Impl.SCALAR,)),
        )
        n_first = len(cache)
        evaluate_candidates(
            fem, machine, "sp", fmt_cache=cache,
            candidates=candidate_space(impls=(Impl.SCALAR,)),
        )
        assert len(cache) == n_first  # nothing rebuilt


class TestAutoTuner:
    def test_end_to_end(self, machine):
        coo = random_values(grid2d(40, 40, 5, dof=3), seed=3)
        tuner = AutoTuner(machine)
        choice = tuner.select(coo, precision="dp", model="overlap")
        fmt = tuner.build(coo, choice.candidate)
        assert fmt.has_values
        x = np.random.default_rng(4).standard_normal(coo.ncols)
        np.testing.assert_allclose(fmt.spmv(x), coo.to_dense() @ x)

    def test_profile_cached(self, machine):
        tuner = AutoTuner(machine)
        assert tuner.profile("dp") is tuner.profile("dp")

    def test_blockable_matrix_gets_blocked_format(self, fem, machine):
        tuner = AutoTuner(machine)
        choice = tuner.select(fem, precision="dp", model="overlap")
        assert choice.candidate.kind != "csr"
