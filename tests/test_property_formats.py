"""Property-based tests (hypothesis) over all storage formats.

The central invariant: every format is an exact, lossless representation of
the sparse matrix — for any pattern, shape and block parameter, ``spmv``
agrees with the dense reference and ``to_dense`` reproduces the original.
Working-set invariants (padding ≥ 0, DEC padding = 0, VBL size cap) ride
along.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    COOMatrix,
    build_format,
)
from repro.types import VBL_MAX_BLOCK


@st.composite
def coo_matrices(draw, max_dim=40, max_nnz=160):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, nrows * ncols)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    # Values away from zero so cancellation cannot mask indexing bugs.
    values = rng.uniform(0.5, 2.0, nnz) * rng.choice([-1.0, 1.0], nnz)
    return COOMatrix(nrows, ncols, rows, cols, values)


RECT_BLOCKS = [(1, 2), (2, 1), (2, 2), (3, 2), (2, 4), (1, 8), (8, 1), (3, 3)]
DIAG_SIZES = [2, 3, 4, 7, 8]


def _x_for(coo, seed=0):
    return np.random.default_rng(seed).standard_normal(coo.ncols)


class TestSpmvAgreesWithDense:
    @given(coo=coo_matrices(), block=st.sampled_from(RECT_BLOCKS))
    @settings(max_examples=40, deadline=None)
    def test_bcsr(self, coo, block):
        fmt = build_format(coo, "bcsr", block)
        x = _x_for(coo)
        np.testing.assert_allclose(
            fmt.spmv(x), coo.to_dense() @ x, rtol=1e-10, atol=1e-10
        )

    @given(coo=coo_matrices(), block=st.sampled_from(RECT_BLOCKS))
    @settings(max_examples=40, deadline=None)
    def test_bcsr_dec(self, coo, block):
        fmt = build_format(coo, "bcsr_dec", block)
        x = _x_for(coo)
        np.testing.assert_allclose(
            fmt.spmv(x), coo.to_dense() @ x, rtol=1e-10, atol=1e-10
        )

    @given(coo=coo_matrices(), b=st.sampled_from(DIAG_SIZES))
    @settings(max_examples=40, deadline=None)
    def test_bcsd(self, coo, b):
        fmt = build_format(coo, "bcsd", b)
        x = _x_for(coo)
        np.testing.assert_allclose(
            fmt.spmv(x), coo.to_dense() @ x, rtol=1e-10, atol=1e-10
        )

    @given(coo=coo_matrices(), b=st.sampled_from(DIAG_SIZES))
    @settings(max_examples=40, deadline=None)
    def test_bcsd_dec(self, coo, b):
        fmt = build_format(coo, "bcsd_dec", b)
        x = _x_for(coo)
        np.testing.assert_allclose(
            fmt.spmv(x), coo.to_dense() @ x, rtol=1e-10, atol=1e-10
        )

    @given(coo=coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_csr_vbl_vbr(self, coo):
        x = _x_for(coo)
        expected = coo.to_dense() @ x
        for kind in ("csr", "vbl", "vbr"):
            fmt = build_format(coo, kind)
            np.testing.assert_allclose(
                fmt.spmv(x), expected, rtol=1e-10, atol=1e-10
            )

    @given(coo=coo_matrices(), block=st.sampled_from(RECT_BLOCKS))
    @settings(max_examples=25, deadline=None)
    def test_ubcsr(self, coo, block):
        fmt = build_format(coo, "ubcsr", block)
        x = _x_for(coo)
        np.testing.assert_allclose(
            fmt.spmv(x), coo.to_dense() @ x, rtol=1e-10, atol=1e-10
        )


class TestStructuralInvariants:
    @given(coo=coo_matrices(), block=st.sampled_from(RECT_BLOCKS))
    @settings(max_examples=40, deadline=None)
    def test_padding_and_ws(self, coo, block):
        bcsr = build_format(coo, "bcsr", block, with_values=False)
        assert bcsr.padding >= 0
        assert bcsr.nnz == coo.nnz
        assert bcsr.working_set("sp") <= bcsr.working_set("dp")
        dec = build_format(coo, "bcsr_dec", block, with_values=False)
        assert dec.padding == 0
        assert sum(p.nnz for p in dec.submatrices()) == coo.nnz

    @given(coo=coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_vbl_block_cap(self, coo):
        vbl = build_format(coo, "vbl", with_values=False)
        if vbl.n_blocks:
            sizes = vbl.blk_size.astype(int)
            assert sizes.max() <= VBL_MAX_BLOCK
            assert sizes.min() >= 1
            assert int(sizes.sum()) == coo.nnz

    @given(coo=coo_matrices(), b=st.sampled_from(DIAG_SIZES))
    @settings(max_examples=40, deadline=None)
    def test_bcsd_dec_blocked_part_in_bounds(self, coo, b):
        dec = build_format(coo, "bcsd_dec", b, with_values=False)
        for part in dec.submatrices():
            if part.kind == "bcsd":
                assert (part.bcol_ind >= 0).all()
                assert (part.bcol_ind + b <= coo.ncols).all()

    @given(coo=coo_matrices())
    @settings(max_examples=30, deadline=None)
    def test_to_dense_round_trips(self, coo):
        expected = coo.to_dense()
        for kind, block in [
            ("csr", None), ("bcsr", (2, 2)), ("bcsd", 3), ("vbl", None)
        ]:
            fmt = build_format(coo, kind, block)
            np.testing.assert_allclose(fmt.to_dense(), expected)


class TestXAccessStream:
    @given(coo=coo_matrices(), block=st.sampled_from(RECT_BLOCKS))
    @settings(max_examples=30, deadline=None)
    def test_stream_length_matches_blocks(self, coo, block):
        for kind in ("bcsr", "bcsr_dec"):
            fmt = build_format(coo, kind, block, with_values=False)
            for part in fmt.submatrices():
                assert len(part.x_access_stream()) == part.n_blocks

    @given(coo=coo_matrices())
    @settings(max_examples=30, deadline=None)
    def test_line_ids_nonnegative(self, coo):
        fmt = build_format(coo, "bcsd", 4, with_values=False)
        lines = fmt.x_access_stream().line_ids(8)
        if len(lines):
            assert lines.min() >= 0
