"""Tests for sweep harness internals and Table II config pools."""

import pytest

from repro.bench.experiments import _config_records, _model_selection
from repro.bench.harness import MatrixSweep, SweepConfig, SweepRecord
from repro.core import Candidate
from repro.types import Impl


def _rec(kind, block, impl, precision="dp", nthreads=1, t=1.0, preds=None):
    return SweepRecord(
        kind=kind, block=block, impl=impl, precision=precision,
        nthreads=nthreads, t_real=t, t_mem=t * 0.8, t_comp=t * 0.3,
        t_latency=0.0, ws_bytes=1000, padding_ratio=1.0, n_blocks=10,
        predictions=preds or {},
    )


@pytest.fixture()
def matrix_sweep():
    m = MatrixSweep(
        idx=1, name="t", domain="test", geometry=False, special=False,
        nrows=10, ncols=10, nnz=50,
    )
    m.records = [
        _rec("csr", None, "scalar", t=1.0,
             preds={"mem": 1.0, "memcomp": 1.2, "overlap": 1.1}),
        _rec("bcsr", (2, 2), "scalar", t=0.9,
             preds={"mem": 0.8, "memcomp": 1.0, "overlap": 0.95}),
        _rec("bcsr", (2, 2), "simd", t=0.85,
             preds={"mem": 0.8, "memcomp": 0.9, "overlap": 0.84}),
        _rec("vbl", None, "scalar", t=0.95, preds={"mem": 0.7}),
        _rec("bcsr", (2, 2), "scalar", precision="sp", t=0.5,
             preds={"mem": 0.4}),
        _rec("bcsr", (2, 2), "scalar", nthreads=2, t=0.6),
    ]
    return m


class TestSelect:
    def test_filters_compose(self, matrix_sweep):
        assert len(matrix_sweep.select(precision="dp", nthreads=1)) == 4
        assert len(matrix_sweep.select(precision="sp")) == 1
        assert len(matrix_sweep.select(nthreads=2)) == 1
        assert len(matrix_sweep.select(impls=("simd",))) == 1
        assert len(matrix_sweep.select(kinds=("csr", "vbl"))) == 2

    def test_candidate_reconstruction(self, matrix_sweep):
        rec = matrix_sweep.records[1]
        cand = rec.candidate
        assert cand == Candidate("bcsr", (2, 2), Impl.SCALAR)


class TestConfigRecords:
    def test_non_simd_pool_is_all_scalar(self, matrix_sweep):
        pool = _config_records(matrix_sweep, "dp", simd=False)
        assert {r.impl for r in pool} == {"scalar"}
        assert {r.kind for r in pool} == {"csr", "bcsr", "vbl"}

    def test_simd_pool_drops_vbl_and_uses_simd_blocks(self, matrix_sweep):
        pool = _config_records(matrix_sweep, "dp", simd=True)
        kinds = {(r.kind, r.impl) for r in pool}
        assert ("csr", "scalar") in kinds
        assert ("bcsr", "simd") in kinds
        assert all(r.kind != "vbl" for r in pool)
        assert all(r.impl == "simd" for r in pool if r.kind == "bcsr")


class TestModelSelection:
    def test_mem_restricted_to_scalar_and_no_vbl(self, matrix_sweep):
        records = matrix_sweep.select(precision="dp", nthreads=1)
        sel = _model_selection(records, "mem")
        # VBL has the lowest mem prediction (0.7) but is excluded; the
        # SIMD record is excluded for MEM too.
        assert sel.kind == "bcsr"
        assert sel.impl == "scalar"

    def test_overlap_may_pick_simd(self, matrix_sweep):
        records = matrix_sweep.select(precision="dp", nthreads=1)
        sel = _model_selection(records, "overlap")
        assert sel.impl == "simd"


class TestSweepConfig:
    def test_version_in_fingerprint(self):
        a = SweepConfig(version=1).fingerprint()
        b = SweepConfig(version=2).fingerprint()
        assert a != b

    def test_defaults(self):
        cfg = SweepConfig()
        assert cfg.precisions == ("sp", "dp")
        assert cfg.thread_counts == (1, 2, 4)
        assert cfg.max_block_elems == 8
