"""Tests for sweep harness internals and Table II config pools."""

import json

import pytest

from repro.bench.experiments import _config_records, _model_selection
from repro.bench.harness import (
    MatrixSweep,
    SweepConfig,
    SweepRecord,
    SweepResult,
    atomic_write_json,
    load_or_run_sweep,
)
from repro.core import Candidate
from repro.types import Impl


def _rec(kind, block, impl, precision="dp", nthreads=1, t=1.0, preds=None):
    return SweepRecord(
        kind=kind, block=block, impl=impl, precision=precision,
        nthreads=nthreads, t_real=t, t_mem=t * 0.8, t_comp=t * 0.3,
        t_latency=0.0, ws_bytes=1000, padding_ratio=1.0, n_blocks=10,
        predictions=preds or {},
    )


@pytest.fixture()
def matrix_sweep():
    m = MatrixSweep(
        idx=1, name="t", domain="test", geometry=False, special=False,
        nrows=10, ncols=10, nnz=50,
    )
    m.records = [
        _rec("csr", None, "scalar", t=1.0,
             preds={"mem": 1.0, "memcomp": 1.2, "overlap": 1.1}),
        _rec("bcsr", (2, 2), "scalar", t=0.9,
             preds={"mem": 0.8, "memcomp": 1.0, "overlap": 0.95}),
        _rec("bcsr", (2, 2), "simd", t=0.85,
             preds={"mem": 0.8, "memcomp": 0.9, "overlap": 0.84}),
        _rec("vbl", None, "scalar", t=0.95, preds={"mem": 0.7}),
        _rec("bcsr", (2, 2), "scalar", precision="sp", t=0.5,
             preds={"mem": 0.4}),
        _rec("bcsr", (2, 2), "scalar", nthreads=2, t=0.6),
    ]
    return m


class TestSelect:
    def test_filters_compose(self, matrix_sweep):
        assert len(matrix_sweep.select(precision="dp", nthreads=1)) == 4
        assert len(matrix_sweep.select(precision="sp")) == 1
        assert len(matrix_sweep.select(nthreads=2)) == 1
        assert len(matrix_sweep.select(impls=("simd",))) == 1
        assert len(matrix_sweep.select(kinds=("csr", "vbl"))) == 2

    def test_candidate_reconstruction(self, matrix_sweep):
        rec = matrix_sweep.records[1]
        cand = rec.candidate
        assert cand == Candidate("bcsr", (2, 2), Impl.SCALAR)


class TestConfigRecords:
    def test_non_simd_pool_is_all_scalar(self, matrix_sweep):
        pool = _config_records(matrix_sweep, "dp", simd=False)
        assert {r.impl for r in pool} == {"scalar"}
        assert {r.kind for r in pool} == {"csr", "bcsr", "vbl"}

    def test_simd_pool_drops_vbl_and_uses_simd_blocks(self, matrix_sweep):
        pool = _config_records(matrix_sweep, "dp", simd=True)
        kinds = {(r.kind, r.impl) for r in pool}
        assert ("csr", "scalar") in kinds
        assert ("bcsr", "simd") in kinds
        assert all(r.kind != "vbl" for r in pool)
        assert all(r.impl == "simd" for r in pool if r.kind == "bcsr")


class TestModelSelection:
    def test_mem_restricted_to_scalar_and_no_vbl(self, matrix_sweep):
        records = matrix_sweep.select(precision="dp", nthreads=1)
        sel = _model_selection(records, "mem")
        # VBL has the lowest mem prediction (0.7) but is excluded; the
        # SIMD record is excluded for MEM too.
        assert sel.kind == "bcsr"
        assert sel.impl == "scalar"

    def test_overlap_may_pick_simd(self, matrix_sweep):
        records = matrix_sweep.select(precision="dp", nthreads=1)
        sel = _model_selection(records, "overlap")
        assert sel.impl == "simd"


class TestSweepConfig:
    def test_version_in_fingerprint(self):
        a = SweepConfig(version=1).fingerprint()
        b = SweepConfig(version=2).fingerprint()
        assert a != b

    def test_defaults(self):
        cfg = SweepConfig()
        assert cfg.precisions == ("sp", "dp")
        assert cfg.thread_counts == (1, 2, 4)
        assert cfg.max_block_elems == 8
        assert cfg.suite_indices is None

    def test_suite_indices_in_fingerprint(self):
        full = SweepConfig()
        subset = SweepConfig(suite_indices=(1, 27, 30))
        assert full.fingerprint() != subset.fingerprint()
        assert subset.fingerprint() != SweepConfig(
            suite_indices=(1, 27)
        ).fingerprint()

    def test_entries_subset(self):
        cfg = SweepConfig(suite_indices=(30, 1))
        names = [e.name for e in cfg.entries()]
        assert names == ["stomach", "dense"]
        assert len(SweepConfig().entries()) == 30

    def test_entries_unknown_index(self):
        with pytest.raises(KeyError):
            SweepConfig(suite_indices=(99,)).entries()


def _stub_result(config):
    m = MatrixSweep(
        idx=1, name="stub", domain="test", geometry=False, special=False,
        nrows=4, ncols=4, nnz=8, records=[_rec("csr", None, "scalar")],
    )
    return SweepResult(config=config, matrices=[m], elapsed_s=1.0)


class TestSweepResultPersistence:
    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "nested" / "sweep.json"
        _stub_result(SweepConfig()).save(path)
        assert path.exists()
        assert list(path.parent.glob("*.tmp")) == []

    def test_roundtrip_preserves_records_and_missing(self, tmp_path):
        result = _stub_result(SweepConfig(suite_indices=(1,)))
        result.missing = [27]
        path = tmp_path / "sweep.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert loaded.canonical_json() == result.canonical_json()
        assert loaded.missing == [27]
        assert loaded.config.suite_indices == (1,)

    def test_load_pre_missing_schema(self, tmp_path):
        # Caches written before the engine existed have no "missing" key.
        result = _stub_result(SweepConfig())
        path = tmp_path / "sweep.json"
        result.save(path)
        from repro.ioutils import read_envelope

        payload = read_envelope(path)
        del payload["missing"]
        # Rewritten as legacy plain JSON on purpose: pre-envelope caches
        # must keep loading through the read-through fallback.
        atomic_write_json(path, payload)
        assert SweepResult.load(path).missing == []

    def test_canonical_json_ignores_elapsed(self):
        a = _stub_result(SweepConfig())
        b = _stub_result(SweepConfig())
        b.elapsed_s = 99.0
        assert a.canonical_json() == b.canonical_json()


class TestCorruptCacheRecovery:
    @pytest.fixture()
    def engine_spy(self, monkeypatch):
        """Replace the engine with a stub so no real sweep runs."""
        import repro.engine.pool as pool_mod

        calls = []

        class FakeEngine:
            def __init__(self, config, **kwargs):
                calls.append(config)
                self.config = config

            def run(self):
                return _stub_result(self.config)

        monkeypatch.setattr(pool_mod, "SweepEngine", FakeEngine)
        return calls

    def test_valid_cache_short_circuits(self, tmp_path, engine_spy):
        config = SweepConfig()
        path = tmp_path / f"sweep_{config.fingerprint()}.json"
        _stub_result(config).save(path)
        result = load_or_run_sweep(config, cache_dir=tmp_path)
        assert result.matrices[0].name == "stub"
        assert engine_spy == []  # engine never constructed

    @pytest.mark.parametrize("garbage", [
        "", "{truncated", '{"config": {}}', '{"matrices": "nope"}',
    ])
    def test_corrupt_cache_reruns(self, tmp_path, engine_spy, garbage, caplog):
        config = SweepConfig()
        path = tmp_path / f"sweep_{config.fingerprint()}.json"
        path.write_text(garbage)
        with caplog.at_level("WARNING", logger="repro.bench.harness"):
            result = load_or_run_sweep(config, cache_dir=tmp_path)
        assert len(engine_spy) == 1
        assert result.elapsed_s == 1.0
        assert any("corrupt" in r.message for r in caplog.records)
        # The rerun rewrote a valid cache file.
        assert SweepResult.load(path).matrices[0].name == "stub"

    def test_partial_result_not_cached(self, tmp_path, monkeypatch):
        import repro.engine.pool as pool_mod

        class PartialEngine:
            def __init__(self, config, **kwargs):
                self.config = config

            def run(self):
                result = _stub_result(self.config)
                result.missing = [27]
                return result

        monkeypatch.setattr(pool_mod, "SweepEngine", PartialEngine)
        config = SweepConfig()
        result = load_or_run_sweep(config, cache_dir=tmp_path)
        assert result.missing == [27]
        path = tmp_path / f"sweep_{config.fingerprint()}.json"
        assert not path.exists()
