#!/usr/bin/env python3
"""Run the autotuner on a Matrix Market file (the real-data path).

The reproduction uses synthetic matrices, but the harness works unchanged on
the actual Davis-collection files the paper used.  This example writes one
of our generated matrices to ``.mtx``, reads it back (exercising the same
code path a downstream user's file would take) and autotunes it.

Usage::

    python examples/matrix_market_io.py [path/to/matrix.mtx]
"""

import sys
import tempfile
from pathlib import Path

from repro import AutoTuner, CORE2_XEON
from repro.matrices import read_matrix_market, write_matrix_market
from repro.matrices.generators import diagonal_pattern, random_values


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"reading {path} ...")
    else:
        path = Path(tempfile.gettempdir()) / "repro_demo.mtx.gz"
        demo = random_values(
            diagonal_pattern(40_000, (0, 1, -1, 150, -150), fill=0.9, seed=5),
            seed=6,
        )
        print(f"no file given; writing a demo matrix to {path} ...")
        write_matrix_market(path, demo)

    coo = read_matrix_market(path)
    print(f"loaded: {coo.nrows:,} x {coo.ncols:,}, {coo.nnz:,} nonzeros")

    tuner = AutoTuner(CORE2_XEON)
    for precision in ("sp", "dp"):
        choice = tuner.select(coo, precision=precision, model="overlap")
        print(
            f"{precision}: OVERLAP selects {choice.candidate.label:20s} "
            f"(ws {choice.ws_bytes / 2**20:.2f} MiB, "
            f"padding {choice.padding_ratio:.3f})"
        )


if __name__ == "__main__":
    main()
