#!/usr/bin/env python3
"""Explore the whole tuning space on one matrix (paper Table III, in small).

For a matrix of your choice (any entry of the 30-matrix suite), evaluate
every (format, block, implementation) candidate: simulated time, speedup
over CSR, working set, padding — and show what each performance model would
have picked.

Usage::

    python examples/format_explorer.py [matrix-name] [sp|dp]

e.g. ``python examples/format_explorer.py pwtk dp``.
"""

import sys

from repro import CORE2_XEON
from repro.bench.report import render_table
from repro.core import evaluate_candidates, oracle_best, select_with_model
from repro.matrices import get_entry


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "pwtk"
    precision = sys.argv[2] if len(sys.argv) > 2 else "dp"
    entry = get_entry(name)
    print(f"building {entry.name} ({entry.note}) ...")
    coo = entry.build()

    results = evaluate_candidates(coo, CORE2_XEON, precision)
    t_csr = next(
        r.t_real for r in results if r.candidate.kind == "csr"
    )

    rows = []
    for res in sorted(results, key=lambda r: r.t_real)[:15]:
        rows.append((
            res.candidate.label,
            f"{res.t_real * 1e3:.3f}",
            f"{t_csr / res.t_real:.2f}x",
            f"{res.ws_bytes / 2**20:.2f}",
            f"{res.padding_ratio:.3f}",
            f"{res.sim.bound}",
        ))
    print(render_table(
        ["candidate", "t (ms)", "vs CSR", "ws (MiB)", "padding", "bound"],
        rows,
        title=f"top 15 of {len(results)} candidates on {entry.name} "
              f"({precision})",
    ))

    best = oracle_best(results)
    print(f"\noracle best: {best.candidate.label}")
    for model in ("mem", "memcomp", "overlap"):
        sel = select_with_model(results, model)
        off = (sel.t_real / best.t_real - 1) * 100
        print(f"{model.upper():8s} selects {sel.candidate.label:20s} "
              f"({off:+.1f}% off the best)")


if __name__ == "__main__":
    main()
