#!/usr/bin/env python3
"""Learned format selection (the paper's Section VI ML direction).

Trains the from-scratch decision tree on synthetic archetypes of the
structural classes, then classifies unseen matrices and completes the
selection with the OVERLAP model inside the predicted format family.
"""

import numpy as np

from repro.core.learned import FEATURE_NAMES, LearnedSelector, extract_features
from repro.machine import CORE2_XEON
from repro.matrices import generators as g

ARCHETYPES = [
    ("FEM mesh (3-dof blocks)",
     lambda s: g.grid2d(30, 30, 5, dof=3, drop_fraction=0.2, seed=s), "bcsr"),
    ("scattered / random",
     lambda s: g.random_uniform(4000, 4000, 24_000, seed=s), "csr"),
    ("circuit (diag + short rows)",
     lambda s: g.circuit(20_000, avg_offdiag=2.2, seed=s), "csr"),
    ("multi-diagonal (ragged)",
     lambda s: g.diagonal_pattern(5000, (0, 1, -1, 40, -40), 0.95, seed=s),
     "bcsd"),
    ("3D stencil (pure diagonals)",
     lambda s: g.grid3d(14 + s % 3, 14, 14, 7, seed=s), "bcsd"),
]

UNSEEN = [
    ("audikw-like 3D FEM",
     lambda: g.grid3d(10, 10, 10, 27, dof=3, drop_fraction=0.3, seed=77)),
    ("circuit-like",
     lambda: g.circuit(30_000, avg_offdiag=2.5, seed=78)),
    ("fdiff-like 3D stencil",
     lambda: g.grid3d(22, 22, 22, 7, seed=79)),
]


def main() -> None:
    feats, labels = [], []
    for _, build, kind in ARCHETYPES:
        for s in range(4):
            feats.append(extract_features(build(s), CORE2_XEON))
            labels.append(kind)
    selector = LearnedSelector(CORE2_XEON, min_samples_leaf=1)
    selector.fit(np.array(feats), labels)
    print(f"trained on {len(labels)} archetype matrices, "
          f"{len(FEATURE_NAMES)} structural features each\n")

    for label, build in UNSEEN:
        coo = build()
        kind = selector.predict_kind(coo)
        choice = selector.select(coo, "dp")
        print(f"{label:26s} -> kind {kind:6s} -> {choice.candidate.label}")


if __name__ == "__main__":
    main()
