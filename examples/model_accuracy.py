#!/usr/bin/env python3
"""Prediction accuracy of the three performance models (Fig. 3, in small).

For three structurally different matrices — a blockable mesh, a uniformly
random pattern and a latency-bound power-law graph — compare each model's
prediction with the simulated "measured" time across the candidate space.

The paper's finding reproduces: MEM gives a lower bound (it ignores
compute), MEMCOMP an upper bound (it ignores overlap), OVERLAP tracks the
measurement — except on the latency-bound graph, where every model
underpredicts because none accounts for input-vector cache misses.
"""

from statistics import mean

from repro import CORE2_XEON
from repro.bench.report import render_table
from repro.core import evaluate_candidates
from repro.matrices import generators as g

MATRICES = {
    "mesh (blockable)": lambda: g.grid2d(110, 110, 9, dof=3,
                                         drop_fraction=0.25, seed=1),
    "random (padding-hostile)": lambda: g.random_uniform(
        90_000, 90_000, 900_000, seed=2),
    "power-law graph (latency-bound)": lambda: g.powerlaw_graph(
        420_000, 2_000_000, alpha=1.7, seed=3),
}


def main() -> None:
    rows = []
    for label, build in MATRICES.items():
        print(f"evaluating {label} ...")
        coo = build()
        results = evaluate_candidates(coo, CORE2_XEON, "dp")
        cells = [label]
        for model in ("mem", "memcomp", "overlap"):
            ratios = [
                r.predictions[model] / r.t_real
                for r in results
                if model in r.predictions and r.candidate.kind != "vbl"
            ]
            cells.append(f"{mean(ratios):.3f}")
        rows.append(cells)
    print()
    print(render_table(
        ["matrix", "MEM pred/real", "MEMCOMP pred/real", "OVERLAP pred/real"],
        rows,
        title="mean predicted/measured time over the candidate space (dp)",
    ))
    print(
        "\nMEM < 1 (underpredicts), MEMCOMP > 1 (overpredicts), OVERLAP ~ 1;"
        "\nall three fall below 1 on the latency-bound graph — the blind"
        "\nspot the paper demonstrates with its col_ind-zeroing benchmark."
    )


if __name__ == "__main__":
    main()
