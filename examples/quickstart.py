#!/usr/bin/env python3
"""Quickstart: build a sparse matrix, autotune its storage format, multiply.

This walks the primary API surface end to end:

1. generate a sparse matrix (a 2D FEM-style mesh with 3 unknowns per node),
2. profile the machine model and let the OVERLAP performance model pick the
   best (format, block, implementation) combination,
3. build the chosen format with values and run SpMV,
4. sanity-check the result and report the predicted gain over plain CSR.
"""

import numpy as np

from repro import AutoTuner, CORE2_XEON, CSRMatrix, simulate
from repro.matrices.generators import grid2d, random_values


def main() -> None:
    # 1. A mesh matrix with natural 3x3 node blocks (~1.6 MB working set).
    coo = random_values(grid2d(60, 60, 9, dof=3), seed=42)
    print(f"matrix: {coo.nrows} x {coo.ncols}, {coo.nnz:,} nonzeros")

    # 2. Autotune on the paper's Core 2 Xeon machine model.
    tuner = AutoTuner(CORE2_XEON)
    choice = tuner.select(coo, precision="dp", model="overlap")
    print(f"OVERLAP model selects: {choice.candidate.label}")
    print(f"  working set: {choice.ws_bytes / 2**20:.2f} MiB "
          f"(padding ratio {choice.padding_ratio:.3f})")

    # 3. Materialise the chosen format and multiply.
    fmt = tuner.build(coo, choice.candidate)
    x = np.random.default_rng(7).standard_normal(coo.ncols)
    y = fmt.spmv(x)

    # 4. Verify against the CSR baseline and compare simulated times.
    csr = CSRMatrix.from_coo(coo)
    np.testing.assert_allclose(y, csr.spmv(x), rtol=1e-9, atol=1e-12)
    t_best = simulate(fmt, CORE2_XEON, "dp", choice.candidate.impl).t_total
    t_csr = simulate(csr, CORE2_XEON, "dp", "scalar").t_total
    print(f"simulated time: {t_best * 1e6:.1f} us vs CSR {t_csr * 1e6:.1f} us "
          f"-> speedup {t_csr / t_best:.2f}x")
    print("result verified against CSR: OK")


if __name__ == "__main__":
    main()
