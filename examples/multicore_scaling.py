#!/usr/bin/env python3
"""Multithreaded SpMV scaling (the paper's Fig. 2 motif on one matrix).

Simulates 1, 2 and 4 cores for CSR and the best blocked format on a
structural FEM matrix.  Blocked formats scale better: once the front-side
bus saturates, the smaller working set is the only thing that still helps —
which is why the multicore win distribution shifts further toward blocking
in the paper.
"""

from repro import CORE2_XEON, simulate
from repro.bench.report import render_table
from repro.core import AutoTuner, Candidate
from repro.core.selection import build_candidate
from repro.matrices import get_entry
from repro.parallel import balanced_partition, stored_per_block_row
from repro.types import Impl


def main() -> None:
    entry = get_entry("af_shell10")
    print(f"building {entry.name} ({entry.note}) ...")
    coo = entry.build()

    tuner = AutoTuner(CORE2_XEON)
    choice = tuner.select(coo, precision="dp", model="overlap")
    candidates = {
        "CSR": Candidate("csr", None, Impl.SCALAR),
        choice.candidate.label: choice.candidate,
    }

    rows = []
    for label, cand in candidates.items():
        fmt = build_candidate(coo, cand)
        t1 = None
        cells = [label]
        for cores in (1, 2, 4):
            res = simulate(fmt, CORE2_XEON, "dp", cand.impl, nthreads=cores)
            t1 = t1 if t1 is not None else res.t_total
            cells.append(
                f"{res.t_total * 1e3:.3f} ms ({t1 / res.t_total:.2f}x)"
            )
        rows.append(cells)
    print(render_table(
        ["format", "1 core", "2 cores", "4 cores"],
        rows,
        title=f"simulated multicore scaling on {entry.name} (dp)",
    ))

    # Show the padding-aware load balance the paper describes (Sec. V-A).
    fmt = build_candidate(coo, choice.candidate)
    for part in fmt.submatrices():
        weights = stored_per_block_row(part)
        partition = balanced_partition(weights, 4)
        shares = partition.segment_sums(weights)
        print(
            f"\n4-thread split of the {part.kind} part "
            f"(stored elements per thread, padding counted):"
        )
        total = shares.sum()
        for t, share in enumerate(shares):
            print(f"  thread {t}: {int(share):>9,}  ({share / total:.1%})")


if __name__ == "__main__":
    main()
