#!/usr/bin/env python3
"""Structural report over the evaluation suite (extends the paper's Table I).

Builds a selection of suite matrices and prints the statistics that decide
blocked-SpMV behaviour: row lengths, horizontal run lengths, per-shape block
fill and diagonal fill.  Pass ``--all`` to build all 30 matrices (slower).
"""

import sys

from repro.bench.report import render_table
from repro.formats import CSRMatrix
from repro.matrices import SUITE, analyze

DEFAULT_PICK = ("dense", "random", "parabolic_fem", "wikipedia",
                "TSOPF_RS", "audikw_1", "fdiff", "pwtk", "thermal2",
                "stomach")


def main() -> None:
    wanted = None if "--all" in sys.argv else DEFAULT_PICK
    rows = []
    for entry in SUITE:
        if wanted is not None and entry.name not in wanted:
            continue
        coo = entry.build()
        s = analyze(coo)
        ws = CSRMatrix.from_coo(coo, with_values=False).working_set("sp")
        rows.append((
            f"{entry.idx:02d}.{entry.name}",
            entry.domain,
            f"{s.nrows:,}",
            f"{s.nnz:,}",
            f"{ws / 2**20:.1f}",
            f"{s.row_mean:.1f}",
            f"{s.mean_run_length:.1f}",
            f"{s.fill_2x2:.2f}",
            f"{s.fill_3x3:.2f}",
            f"{s.diag_fill_4:.2f}",
        ))
        print(f"  built {entry.name}", flush=True)
    print()
    print(render_table(
        ["matrix", "domain", "rows", "nnz", "ws sp (MiB)", "nnz/row",
         "run len", "2x2 fill", "3x3 fill", "diag4 fill"],
        rows,
        title="structural statistics of the evaluation suite",
    ))
    print(
        "\nfill columns read as: 1.00 = blocks perfectly dense (no padding);"
        "\nlow values mean a padded format would store mostly zeros."
    )


if __name__ == "__main__":
    main()
