#!/usr/bin/env python3
"""Solve a PDE system with CG on an autotuned storage format.

The paper motivates SpMV through iterative solvers: this example builds a
2D Poisson system with 3 unknowns per node, lets the OVERLAP model choose
the storage format, runs Conjugate Gradient on it, and compares the
simulated end-to-end solve time against plain CSR — the per-iteration
format speedup compounds over every CG iteration.
"""

import numpy as np

from repro import AutoTuner, CORE2_XEON, CSRMatrix, simulate
from repro.matrices.generators import grid2d
from repro.solvers import cg


def make_spd_system(nx: int, ny: int, dof: int):
    """A block Laplacian: SPD with dense dof x dof node blocks."""
    stencil = grid2d(nx, ny, 5, dof=dof)
    values = np.where(stencil.rows == stencil.cols, 4.0 * dof, -0.9)
    coo = stencil.with_values(values)
    rng = np.random.default_rng(5)
    x_true = rng.standard_normal(coo.nrows)
    b = coo.to_dense() @ x_true if coo.nrows <= 4000 else None
    if b is None:
        csr = CSRMatrix.from_coo(coo)
        b = csr.spmv(x_true)
    return coo, b, x_true


def main() -> None:
    coo, b, x_true = make_spd_system(110, 110, dof=3)  # ws > L2: the regime the models target
    print(f"system: {coo.nrows:,} unknowns, {coo.nnz:,} nonzeros")

    tuner = AutoTuner(CORE2_XEON)
    choice = tuner.select(coo, precision="dp", model="overlap")
    tuned = tuner.build(coo, choice.candidate)
    csr = CSRMatrix.from_coo(coo)
    print(f"OVERLAP selects {choice.candidate.label}")

    res = cg(tuned, b, tol=1e-8, max_iter=4000)
    assert res.converged
    err = float(np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true))
    print(f"CG converged in {res.iterations} iterations "
          f"({res.spmv_count} SpMVs), relative error {err:.2e}")

    t_tuned = simulate(tuned, CORE2_XEON, "dp", choice.candidate.impl).t_total
    t_csr = simulate(csr, CORE2_XEON, "dp", "scalar").t_total
    print(
        f"simulated solve time: {res.spmv_count * t_tuned * 1e3:.1f} ms "
        f"({choice.candidate.label}) vs {res.spmv_count * t_csr * 1e3:.1f} ms "
        f"(CSR) -> {t_csr / t_tuned:.2f}x per iteration"
    )


if __name__ == "__main__":
    main()
